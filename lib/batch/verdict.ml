type crash = Signal of string | Exit of int

type t =
  | Done of string
  | Rejected of Diag.t
  | Timeout
  | Oom
  | Crashed of crash

let label = function
  | Done _ -> "done"
  | Rejected _ -> "rejected"
  | Timeout -> "timeout"
  | Oom -> "oom"
  | Crashed _ -> "crashed"

let is_failure = function
  | Timeout | Oom | Crashed _ -> true
  | Rejected d -> Diag.is_bug d
  | Done _ -> false

let describe = function
  | Done _ -> "done"
  | Rejected d -> Printf.sprintf "rejected (%s)" d.Diag.code
  | Timeout -> "timeout"
  | Oom -> "oom"
  | Crashed (Signal s) -> Printf.sprintf "crashed (%s)" s
  | Crashed (Exit n) -> Printf.sprintf "crashed (exit %d)" n

(* OCaml's Sys.sig* numbers are runtime-internal (negative); map the ones a
   worker can plausibly die of. *)
let signal_name n =
  let known =
    [
      (Sys.sigsegv, "SIGSEGV"); (Sys.sigkill, "SIGKILL");
      (Sys.sigabrt, "SIGABRT"); (Sys.sigbus, "SIGBUS");
      (Sys.sigill, "SIGILL"); (Sys.sigfpe, "SIGFPE");
      (Sys.sigint, "SIGINT"); (Sys.sigterm, "SIGTERM");
      (Sys.sigpipe, "SIGPIPE"); (Sys.sigquit, "SIGQUIT");
    ]
  in
  match List.assoc_opt n known with
  | Some name -> name
  | None -> Printf.sprintf "signal %d" n

let diag_to_json (d : Diag.t) =
  Jsonl.Obj
    [
      ("code", Jsonl.String d.Diag.code);
      ("category", Jsonl.String (Diag.category_name d.Diag.category));
      ("message", Jsonl.String d.Diag.message);
    ]

let diag_of_json v =
  match (Jsonl.str "code" v, Jsonl.str "category" v, Jsonl.str "message" v) with
  | Some code, Some cat, Some message -> (
      match Diag.category_of_name cat with
      | Some category -> Ok (Diag.make category ~code message)
      | None -> Error ("unknown diagnostic category " ^ cat))
  | _ -> Error "diag object missing code/category/message"

let to_fields = function
  | Done payload ->
      [ ("verdict", Jsonl.String "done"); ("payload", Jsonl.String payload) ]
  | Rejected d ->
      [ ("verdict", Jsonl.String "rejected"); ("diag", diag_to_json d) ]
  | Timeout -> [ ("verdict", Jsonl.String "timeout") ]
  | Oom -> [ ("verdict", Jsonl.String "oom") ]
  | Crashed (Signal s) ->
      [ ("verdict", Jsonl.String "crashed"); ("signal", Jsonl.String s) ]
  | Crashed (Exit n) ->
      [ ("verdict", Jsonl.String "crashed"); ("exit", Jsonl.Int n) ]

let of_fields v =
  match Jsonl.str "verdict" v with
  | None -> Error "record has no verdict field"
  | Some "done" -> (
      match Jsonl.str "payload" v with
      | Some p -> Ok (Done p)
      | None -> Error "done verdict has no payload")
  | Some "rejected" -> (
      match Jsonl.member "diag" v with
      | Some d -> Result.map (fun d -> Rejected d) (diag_of_json d)
      | None -> Error "rejected verdict has no diag")
  | Some "timeout" -> Ok Timeout
  | Some "oom" -> Ok Oom
  | Some "crashed" -> (
      match (Jsonl.str "signal" v, Jsonl.int "exit" v) with
      | Some s, _ -> Ok (Crashed (Signal s))
      | None, Some n -> Ok (Crashed (Exit n))
      | None, None -> Error "crashed verdict has neither signal nor exit")
  | Some other -> Error ("unknown verdict " ^ other)

let equal a b =
  match (a, b) with
  | Done p, Done q -> String.equal p q
  | Rejected d, Rejected e ->
      String.equal d.Diag.code e.Diag.code
      && d.Diag.category = e.Diag.category
      && String.equal d.Diag.message e.Diag.message
  | Timeout, Timeout | Oom, Oom -> true
  | Crashed c, Crashed d -> c = d
  | _ -> false
