type job = {
  id : string;
  seed : int;
  descr : string;
  work : unit -> (string, Diag.t) result;
  degraded : (unit -> (string, Diag.t) result) option;
}

let job ?degraded ~id ~seed ~descr work = { id; seed; descr; work; degraded }

let oom_exit_code = 9

(* Single-domain process: a plain ref written from a signal handler and
   polled by the supervision loop is race-free enough. *)
let stop_requested = ref false
let request_stop () = stop_requested := true
let stop_pending () = !stop_requested
let clear_stop () = stop_requested := false

let install_signal_handlers () =
  let handle = Sys.Signal_handle (fun _ -> request_stop ()) in
  Sys.set_signal Sys.sigint handle;
  Sys.set_signal Sys.sigterm handle

type outcome = {
  records : Journal.record list;
  resumed : int;
  interrupted : bool;
}

(* --- Worker side ------------------------------------------------------- *)

let write_all fd s =
  let b = Bytes.of_string s in
  let rec go off =
    if off < Bytes.length b then
      match Unix.write fd b off (Bytes.length b - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

(* The worker: run the attempt's closure, serialize the result onto the
   pipe, _exit without flushing the parent's buffered channels. Crashes,
   hangs and heap blowups simply happen — classification is the parent's
   job. *)
let exec_child ~heap_words ~attempt job wfd =
  Sys.set_signal Sys.sigint Sys.Signal_default;
  Sys.set_signal Sys.sigterm Sys.Signal_default;
  (match heap_words with
  | None -> ()
  | Some ceiling ->
      ignore
        (Gc.create_alarm (fun () ->
             if (Gc.quick_stat ()).Gc.heap_words > ceiling then
               Unix._exit oom_exit_code)));
  let work =
    if attempt > 1 then Option.value job.degraded ~default:job.work
    else job.work
  in
  let result =
    try work ()
    with e ->
      Error
        (Diag.internal ~code:"batch.worker-exn"
           ("worker raised: " ^ Printexc.to_string e))
  in
  let doc =
    match result with
    | Ok payload -> Jsonl.Obj [ ("ok", Jsonl.String payload) ]
    | Error d -> Jsonl.Obj [ ("rejected", Verdict.diag_to_json d) ]
  in
  write_all wfd (Jsonl.to_string doc);
  (try Unix.close wfd with Unix.Unix_error _ -> ());
  Unix._exit 0

(* --- Supervisor -------------------------------------------------------- *)

type slot = {
  pid : int;
  s_job : job;
  attempt : int;
  fd : Unix.file_descr;
  buf : Buffer.t;
  started : float;
  kill_at : float;
  mutable eof : bool;
  mutable killed : bool;  (** We sent the deadline SIGKILL. *)
}

let spawn ~heap_words ~deadline job attempt =
  let rfd, wfd = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
      (try Unix.close rfd with Unix.Unix_error _ -> ());
      exec_child ~heap_words ~attempt job wfd
  | pid ->
      Unix.close wfd;
      Unix.set_nonblock rfd;
      let now = Unix.gettimeofday () in
      {
        pid;
        s_job = job;
        attempt;
        fd = rfd;
        buf = Buffer.create 256;
        started = now;
        kill_at = now +. deadline;
        eof = false;
        killed = false;
      }

let drain slot =
  if not slot.eof then begin
    let chunk = Bytes.create 4096 in
    let rec go () =
      match Unix.read slot.fd chunk 0 (Bytes.length chunk) with
      | 0 -> slot.eof <- true
      | n ->
          Buffer.add_subbytes slot.buf chunk 0 n;
          go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    in
    go ()
  end

let payload_verdict slot =
  match Jsonl.parse (Buffer.contents slot.buf) with
  | Ok doc -> (
      match (Jsonl.str "ok" doc, Jsonl.member "rejected" doc) with
      | Some payload, _ -> Verdict.Done payload
      | None, Some d -> (
          match Verdict.diag_of_json d with
          | Ok d -> Verdict.Rejected d
          | Error _ -> Verdict.Crashed (Verdict.Exit 0))
      | None, None -> Verdict.Crashed (Verdict.Exit 0))
  | Error _ -> Verdict.Crashed (Verdict.Exit 0)

let classify slot status =
  match status with
  | Unix.WEXITED 0 -> payload_verdict slot
  | Unix.WEXITED n when n = oom_exit_code -> Verdict.Oom
  | Unix.WEXITED n -> Verdict.Crashed (Verdict.Exit n)
  | Unix.WSIGNALED _ when slot.killed -> Verdict.Timeout
  | Unix.WSIGNALED s -> Verdict.Crashed (Verdict.Signal (Verdict.signal_name s))
  | Unix.WSTOPPED _ ->
      (* Unreachable without WUNTRACED; classify defensively. *)
      Verdict.Crashed (Verdict.Exit 255)

let kill_slot slot =
  slot.killed <- true;
  try Unix.kill slot.pid Sys.sigkill with Unix.Unix_error _ -> ()

let reap_blocking slot =
  let rec go () =
    match Unix.waitpid [] slot.pid with
    | _, status -> status
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  let status = go () in
  drain slot;
  (try Unix.close slot.fd with Unix.Unix_error _ -> ());
  status

(* --- Incremental pool --------------------------------------------------- *)

type completion = {
  c_job : job;
  c_attempt : int;
  c_verdict : Verdict.t;
  c_seconds : float;
}

type t = {
  p_heap_words : int option;
  p_slots : slot option array;
  p_queue : (job * int * float) Queue.t;  (* job, attempt, deadline *)
}

let create ?(workers = 1) ?heap_words () =
  let workers = max 1 workers in
  {
    p_heap_words = heap_words;
    p_slots = Array.make workers None;
    p_queue = Queue.create ();
  }

let submit t ?(attempt = 1) ~deadline job =
  Queue.add (job, attempt, deadline) t.p_queue

let in_flight t =
  Array.fold_left
    (fun n s -> match s with Some _ -> n + 1 | None -> n)
    0 t.p_slots

let queued t = Queue.length t.p_queue
let load t = in_flight t + queued t
let capacity t = Array.length t.p_slots

let worker_fds t =
  Array.to_list t.p_slots
  |> List.filter_map (function
       | Some s when not s.eof -> Some s.fd
       | _ -> None)

(* The child is gone: read the pipe to EOF so no payload byte is lost. *)
let drain_to_eof slot =
  let rec go () =
    if not slot.eof then begin
      drain slot;
      if not slot.eof then begin
        ignore (Unix.select [ slot.fd ] [] [] 0.01);
        go ()
      end
    end
  in
  go ()

let reap_slot t i slot status =
  drain_to_eof slot;
  (try Unix.close slot.fd with Unix.Unix_error _ -> ());
  t.p_slots.(i) <- None;
  {
    c_job = slot.s_job;
    c_attempt = slot.attempt;
    c_verdict = classify slot status;
    c_seconds = Unix.gettimeofday () -. slot.started;
  }

let step t =
  (* Fill free slots from the queue. *)
  Array.iteri
    (fun i s ->
      if s = None && not (Queue.is_empty t.p_queue) then begin
        let j, attempt, deadline = Queue.pop t.p_queue in
        t.p_slots.(i) <-
          Some (spawn ~heap_words:t.p_heap_words ~deadline j attempt)
      end)
    t.p_slots;
  (* Drain pipe traffic, enforce deadlines, reap exits — all non-blocking
     (worker pipes are O_NONBLOCK; waitpid uses WNOHANG). *)
  let now = Unix.gettimeofday () in
  let finished = ref [] in
  Array.iteri
    (fun i -> function
      | None -> ()
      | Some slot -> (
          drain slot;
          if now > slot.kill_at && not slot.killed then kill_slot slot;
          match Unix.waitpid [ Unix.WNOHANG ] slot.pid with
          | 0, _ -> ()
          | _, status -> finished := reap_slot t i slot status :: !finished
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()))
    t.p_slots;
  List.rev !finished

(* Revocation: a specific attempt is no longer wanted. A queued attempt
   just leaves the FIFO; a live one is SIGKILLed and reaped here so the
   caller never sees a completion for it. *)
let kill_job t id =
  let found = ref false in
  let kept = Queue.create () in
  Queue.iter
    (fun ((j, _, _) as item) ->
      if j.id = id then found := true else Queue.add item kept)
    t.p_queue;
  Queue.clear t.p_queue;
  Queue.transfer kept t.p_queue;
  Array.iteri
    (fun i -> function
      | Some slot when slot.s_job.id = id ->
          found := true;
          kill_slot slot;
          ignore (reap_blocking slot);
          t.p_slots.(i) <- None
      | _ -> ())
    t.p_slots;
  !found

let kill_all t =
  Queue.clear t.p_queue;
  let finished = ref [] in
  Array.iteri
    (fun i -> function
      | None -> ()
      | Some slot ->
          kill_slot slot;
          let status = reap_blocking slot in
          finished := reap_slot t i slot status :: !finished)
    t.p_slots;
  List.rev !finished

(* --- Batch driver ------------------------------------------------------- *)

let run ?(workers = 1) ?(retry = Retry.default) ?journal ?(resume = false)
    ?heap_words ?(log = fun (_ : string) -> ()) ~deadline jobs =
  let workers = max 1 workers in
  stop_requested := false;
  let previous =
    if resume then
      match journal with
      | None -> Ok []
      | Some path -> Journal.load path
    else Ok []
  in
  match previous with
  | Error d -> Error d
  | Ok previous ->
      let finals = Journal.finals previous in
      let lasts = Journal.last_attempts previous in
      let writer = Option.map Journal.open_writer journal in
      let results : (string, Journal.record) Hashtbl.t =
        Hashtbl.create (List.length jobs)
      in
      let resumed = ref 0 in
      let pool = create ~workers ?heap_words () in
      (* Submission order; resume decides the first attempt. *)
      List.iter
        (fun j ->
          match Hashtbl.find_opt finals j.id with
          | Some r ->
              incr resumed;
              Hashtbl.replace results j.id r;
              log (Printf.sprintf "%s: resumed (%s)" j.descr
                     (Verdict.describe r.Journal.verdict))
          | None ->
              let attempt =
                match Hashtbl.find_opt lasts j.id with
                | Some r -> r.Journal.attempt + 1
                | None -> 1
              in
              submit pool ~attempt
                ~deadline:(Retry.deadline retry ~attempt deadline) j)
        jobs;
      let journal_record r =
        (* A dead journal sink must not abort the batch: the only cost of
           a lost record is redone work on the next resume. *)
        Option.iter
          (fun w ->
            match Journal.append w r with
            | Ok () -> ()
            | Error d -> log (Diag.to_string d))
          writer
      in
      let finish c =
        let final =
          not (Retry.should_retry retry ~attempt:c.c_attempt c.c_verdict)
        in
        let record =
          {
            Journal.id = c.c_job.id;
            seed = c.c_job.seed;
            descr = c.c_job.descr;
            attempt = c.c_attempt;
            final;
            verdict = c.c_verdict;
            seconds = c.c_seconds;
          }
        in
        journal_record record;
        if final then begin
          Hashtbl.replace results c.c_job.id record;
          log
            (Printf.sprintf "%s: %s (%.1fs%s)" c.c_job.descr
               (Verdict.describe c.c_verdict) c.c_seconds
               (if c.c_attempt > 1 then ", retry" else ""))
        end
        else begin
          log
            (Printf.sprintf "%s: %s (%.1fs) — retrying degraded"
               c.c_job.descr (Verdict.describe c.c_verdict) c.c_seconds);
          let attempt = c.c_attempt + 1 in
          submit pool ~attempt
            ~deadline:(Retry.deadline retry ~attempt deadline) c.c_job
        end
      in
      let interrupted = ref false in
      let rec supervise () =
        if !stop_requested && not !interrupted then begin
          interrupted := true;
          (* Interrupt discards in-flight attempts unrecorded, so a resume
             re-runs them from their last journalled attempt. *)
          ignore (kill_all pool)
        end;
        if load pool = 0 then ()
        else begin
          let completions = step pool in
          List.iter finish completions;
          (if completions = [] then
             match Unix.select (worker_fds pool) [] [] 0.05 with
             | _ -> ()
             | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
          supervise ()
        end
      in
      supervise ();
      Option.iter Journal.close writer;
      let records =
        List.filter_map (fun j -> Hashtbl.find_opt results j.id) jobs
      in
      Ok { records; resumed = !resumed; interrupted = !interrupted }
