(** Batch manifests: one synthesis job per line.

    {v
    # comments and blank lines are skipped
    diffeq --cs 4
    examples/data/fir4.dfg --cs 8 --style 2 --cse
    ewf --clock 100 --inject hang      # fault injection, per job
    v}

    The first token is a DFG file, a behavioural [.beh] file, or a
    built-in example name; the rest are the familiar [synth] option
    flags plus [--inject FAULT] (artifact corruptions {e and} the
    process faults [hang] / [segv] — the latter are what the
    batch-containment CI job plants). Malformed lines are
    [batch.manifest] input errors with a file:line span. *)

type entry = {
  e_line : int;  (** 1-based manifest line, for spans and job labels. *)
  e_spec : string;  (** DFG file / builtin name. *)
  e_options : Harness.Driver.options;
  e_fault : Harness.Fault.t option;
}

val descr : entry -> string
(** Human label: spec + flags (+ fault), e.g.
    ["diffeq --cs 4 --inject hang"]. *)

val load_graph : string -> (Dfg.Graph.t, Diag.t) result
(** Resolve a spec the way the CLI does: an existing file is parsed
    ([.beh] through the frontend), otherwise the built-in example of
    that name; unknown specs are an [io.no-such-input] error. *)

val parse_line :
  file:string -> line:int -> string -> (entry option, Diag.t) result
(** [Ok None] for blank/comment lines. *)

val parse_file : string -> (entry list, Diag.t) result
