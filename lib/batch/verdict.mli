(** Typed outcome of one supervised batch job.

    The lattice the pool classifies every worker exit into:

    - [Done payload] — the job ran to completion; [payload] is the
      job-defined JSON summary (see {!Jobs}) streamed back over the
      worker pipe.
    - [Rejected diag] — the job stopped with an expected diagnostic
      (malformed input, infeasible constraints). Not a failure unless
      the diagnostic is itself a bug ({!Diag.is_bug}).
    - [Timeout] — the wall-clock watchdog SIGKILLed the worker at its
      deadline. Unlike {!Harness.Driver}'s advisory [over_budget], this
      is hard enforcement: an in-stage infinite loop dies here.
    - [Oom] — the worker's {!Gc} alarm found the OCaml heap above the
      ceiling and aborted the job before the machine started swapping.
    - [Crashed] — the worker died any other way: a genuine signal
      (SIGSEGV, …) or an unexpected exit code. *)

type crash = Signal of string | Exit of int

type t =
  | Done of string  (** Job-defined JSON payload. *)
  | Rejected of Diag.t
  | Timeout
  | Oom
  | Crashed of crash

val label : t -> string
(** ["done" | "rejected" | "timeout" | "oom" | "crashed"] — the stable
    journal tag. *)

val is_failure : t -> bool
(** [Timeout], [Oom], [Crashed], and [Rejected d] with [Diag.is_bug d].
    A [Done] verdict's cleanliness is the job layer's call (the payload
    may report violations); see {!Jobs.payload_failed}. *)

val describe : t -> string
(** Human one-liner, e.g. ["crashed (SIGSEGV)"]. *)

val signal_name : int -> string
(** OCaml signal number to a stable name ("SIGSEGV", …); unknown numbers
    render as ["signal <n>"]. *)

val diag_to_json : Diag.t -> Jsonl.t
val diag_of_json : Jsonl.t -> (Diag.t, string) result
(** Diagnostic round-trip (code + category + message) shared with the
    worker pipe protocol. *)

val to_fields : t -> (string * Jsonl.t) list
(** Journal-record fields: [verdict] plus [payload] / [diag] / [signal]
    / [exit] as applicable. *)

val of_fields : Jsonl.t -> (t, string) result
(** Inverse of {!to_fields} over a record object. *)

val equal : t -> t -> bool
(** Structural equality used by the resume-equivalence check (diag
    compared by code + category + message). *)
