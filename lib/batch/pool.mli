(** Supervised, fault-isolated job execution.

    Each job runs in its own forked worker process ([Unix.fork]; no
    external dependencies), so a segfault, a runaway allocation or an
    infinite loop in one synthesis job cannot take down the batch: the
    parent supervises up to [workers] children at a time behind two hard
    watchdogs —

    - a {b wall-clock deadline}: the worker is SIGKILLed (not asked
      nicely) when its attempt exceeds the deadline, closing the gap
      left by {!Harness.Driver}'s post-hoc [over_budget] flag;
    - a {b heap ceiling}: a {!Gc} alarm inside the worker aborts the
      job as soon as the OCaml major heap crosses [heap_words].

    Workers stream their result back over a pipe as a typed
    {!Verdict.t}; every attempt is appended to the {!Journal} (when one
    is given) before the pool moves on, so [~resume:true] after a crash
    or SIGKILL skips already-completed jobs deterministically.
    [Timeout]/[Oom] verdicts go through the {!Retry} policy — one
    re-run with the job's [degraded] closure — before becoming final. *)

type job = {
  id : string;  (** Stable digest; the journal / resume key. *)
  seed : int;  (** Ordering key for order-independent aggregation. *)
  descr : string;  (** Human label for logs and the journal. *)
  work : unit -> (string, Diag.t) result;
      (** Runs in the worker. [Ok payload] becomes [Done payload];
          [Error d] becomes [Rejected d]. Must not write to stdout. *)
  degraded : (unit -> (string, Diag.t) result) option;
      (** Cheaper variant for the retry attempt (lower budgets, baseline
          engines). [None] retries with [work] itself. *)
}

val job :
  ?degraded:(unit -> (string, Diag.t) result) ->
  id:string -> seed:int -> descr:string ->
  (unit -> (string, Diag.t) result) -> job

val oom_exit_code : int
(** Exit code a worker reserves for "heap ceiling breached" (9). Job
    closures must not [exit] with it — or at all. *)

val request_stop : unit -> unit
(** Ask the running pool to stop: live workers are SIGKILLed, the
    journal stays flushed (it is fsynced per record), and {!run} returns
    with [interrupted = true]. Safe to call from a signal handler. *)

val install_signal_handlers : unit -> unit
(** Route SIGINT and SIGTERM to {!request_stop}. The CLI exits 130
    when [interrupted] is set. *)

type outcome = {
  records : Journal.record list;
      (** Final record per submitted job, in submission order — including
          records replayed from the journal on resume. Jobs in flight at
          an interrupt have no record. *)
  resumed : int;  (** Jobs skipped because the journal already had them. *)
  interrupted : bool;
}

val run :
  ?workers:int ->
  ?retry:Retry.policy ->
  ?journal:string ->
  ?resume:bool ->
  ?heap_words:int ->
  ?log:(string -> unit) ->
  deadline:float ->
  job list ->
  (outcome, Diag.t) result
(** Run the batch. [deadline] is per-attempt wall-clock seconds.
    [Error] is reserved for environment problems (unreadable or corrupt
    journal); job failures are data — look at the records. *)
