(** Supervised, fault-isolated job execution.

    Each job runs in its own forked worker process ([Unix.fork]; no
    external dependencies), so a segfault, a runaway allocation or an
    infinite loop in one synthesis job cannot take down the batch: the
    parent supervises up to [workers] children at a time behind two hard
    watchdogs —

    - a {b wall-clock deadline}: the worker is SIGKILLed (not asked
      nicely) when its attempt exceeds the deadline, closing the gap
      left by {!Harness.Driver}'s post-hoc [over_budget] flag;
    - a {b heap ceiling}: a {!Gc} alarm inside the worker aborts the
      job as soon as the OCaml major heap crosses [heap_words].

    Workers stream their result back over a pipe as a typed
    {!Verdict.t}; every attempt is appended to the {!Journal} (when one
    is given) before the pool moves on, so [~resume:true] after a crash
    or SIGKILL skips already-completed jobs deterministically.
    [Timeout]/[Oom] verdicts go through the {!Retry} policy — one
    re-run with the job's [degraded] closure — before becoming final. *)

type job = {
  id : string;  (** Stable digest; the journal / resume key. *)
  seed : int;  (** Ordering key for order-independent aggregation. *)
  descr : string;  (** Human label for logs and the journal. *)
  work : unit -> (string, Diag.t) result;
      (** Runs in the worker. [Ok payload] becomes [Done payload];
          [Error d] becomes [Rejected d]. Must not write to stdout. *)
  degraded : (unit -> (string, Diag.t) result) option;
      (** Cheaper variant for the retry attempt (lower budgets, baseline
          engines). [None] retries with [work] itself. *)
}

val job :
  ?degraded:(unit -> (string, Diag.t) result) ->
  id:string -> seed:int -> descr:string ->
  (unit -> (string, Diag.t) result) -> job

val oom_exit_code : int
(** Exit code a worker reserves for "heap ceiling breached" (9). Job
    closures must not [exit] with it — or at all. *)

val request_stop : unit -> unit
(** Ask the running pool to stop: live workers are SIGKILLed, the
    journal stays flushed (it is fsynced per record), and {!run} returns
    with [interrupted = true]. Safe to call from a signal handler. *)

val stop_pending : unit -> bool
(** Whether {!request_stop} has fired since the last {!run} started —
    for external batch drivers (the cluster dispatcher) that implement
    their own supervision loop but share the interrupt discipline. *)

val clear_stop : unit -> unit
(** Reset the stop flag before starting a supervision loop ({!run} does
    this itself). *)

val install_signal_handlers : unit -> unit
(** Route SIGINT and SIGTERM to {!request_stop}. The CLI exits 130
    when [interrupted] is set. *)

(** {2 Incremental pool}

    The event-loop face of the same machinery: a long-lived supervisor
    (the serve daemon, or {!run} itself) owns a pool, {!submit}s jobs as
    they arrive, folds {!worker_fds} into its own [select], and collects
    {!completion}s from non-blocking {!step} calls. All the containment
    guarantees above (fork isolation, SIGKILL deadline, heap ceiling)
    apply per attempt; retry and journalling policy live in the caller. *)

type t
(** A pool of at most [workers] live worker processes plus a FIFO of
    submitted-but-unstarted attempts. Not thread-safe; drive it from one
    event loop. *)

type completion = {
  c_job : job;
  c_attempt : int;  (** As passed to {!submit}. *)
  c_verdict : Verdict.t;
  c_seconds : float;  (** Attempt wall-clock. *)
}

val create : ?workers:int -> ?heap_words:int -> unit -> t

val submit : t -> ?attempt:int -> deadline:float -> job -> unit
(** Enqueue one attempt ([attempt] defaults to 1). [deadline] is this
    attempt's wall-clock budget in seconds, applied from the moment the
    worker is forked (not from submission). Never blocks and never
    rejects — admission control is the caller's job; see {!load}. *)

val in_flight : t -> int
(** Live worker processes. *)

val queued : t -> int
(** Submitted attempts not yet forked. *)

val load : t -> int
(** [in_flight + queued] — what an admission controller compares against
    its ceiling. *)

val capacity : t -> int
(** The [workers] bound. *)

val worker_fds : t -> Unix.file_descr list
(** Read ends of live worker pipes, for the caller's [select]. Readable
    fds (or a timeout tick — deadlines need one) mean {!step} has work. *)

val step : t -> completion list
(** One non-blocking supervision tick: fork queued attempts into free
    slots, drain worker pipes, SIGKILL attempts past their deadline, and
    reap exited workers. Returns completions in reap order (possibly
    none). Call it at least every ~50ms while {!load} is positive so
    deadlines are enforced promptly. *)

val kill_job : t -> string -> bool
(** Revoke one job by id: a queued attempt is dropped, a live one is
    SIGKILLed and reaped with {e no} completion surfaced — the caller
    has already decided the attempt's fate (lease revoked, duplicate).
    Returns [false] when no queued or live attempt matches. *)

val kill_all : t -> completion list
(** SIGKILL every live worker, reap them all (blocking, but workers die
    to SIGKILL immediately), and discard the queue. Returns the killed
    attempts' completions (verdict [Timeout], by the deadline-kill
    classification) for callers that still owe responses for them. *)

type outcome = {
  records : Journal.record list;
      (** Final record per submitted job, in submission order — including
          records replayed from the journal on resume. Jobs in flight at
          an interrupt have no record. *)
  resumed : int;  (** Jobs skipped because the journal already had them. *)
  interrupted : bool;
}

val run :
  ?workers:int ->
  ?retry:Retry.policy ->
  ?journal:string ->
  ?resume:bool ->
  ?heap_words:int ->
  ?log:(string -> unit) ->
  deadline:float ->
  job list ->
  (outcome, Diag.t) result
(** Run the batch. [deadline] is per-attempt wall-clock seconds.
    [Error] is reserved for environment problems (unreadable or corrupt
    journal); job failures are data — look at the records. *)
