type entry = {
  e_line : int;
  e_spec : string;
  e_options : Harness.Driver.options;
  e_fault : Harness.Fault.t option;
}

let descr e =
  let flags = Harness.Driver.options_to_flags e.e_options in
  String.concat " "
    (List.filter
       (fun s -> s <> "")
       [
         e.e_spec; flags;
         (match e.e_fault with
         | Some f -> "--inject " ^ Harness.Fault.to_string f
         | None -> "");
       ])

let load_graph spec =
  if Sys.file_exists spec then
    if Filename.check_suffix spec ".beh" then Dfg.Frontend.compile_file spec
    else Dfg.Parser.parse_file spec
  else
    match Workloads.Classic.by_name spec with
    | Some g -> Ok g
    | None ->
        Error
          (Diag.input ~code:"io.no-such-input"
             (Printf.sprintf
                "%s: no such file or built-in example (try ex1..ex6, diffeq, \
                 ewf, fir16, dct8, ar, tseng, chained, facet, cond)"
                spec))

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let parse_line ~file ~line text =
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        Error
          (Diag.input ~code:"batch.manifest" ~file
             ~span:(Diag.point ~line ~col:1)
             msg))
      fmt
  in
  let words =
    String.split_on_char ' ' (strip_comment text)
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun w -> w <> "")
  in
  match words with
  | [] -> Ok None
  | spec :: flags ->
      let open Harness.Driver in
      let rec go o fault = function
        | [] -> Ok (Some { e_line = line; e_spec = spec; e_options = o; e_fault = fault })
        | "--two-cycle-mult" :: rest -> go { o with two_cycle = true } fault rest
        | "--pipelined-mult" :: rest -> go { o with pipelined = true } fault rest
        | "--cse" :: rest -> go { o with cse = true } fault rest
        | "--widths" :: rest -> go { o with widths = true } fault rest
        | "--baseline-only" :: rest -> go { o with baseline_only = true } fault rest
        | "--cs" :: v :: rest | "--steps" :: v :: rest -> (
            match int_of_string_opt v with
            | Some n -> go { o with cs = n } fault rest
            | None -> fail "--cs %s: expected an integer" v)
        | "--latency" :: v :: rest -> (
            match int_of_string_opt v with
            | Some n -> go { o with latency = Some n } fault rest
            | None -> fail "--latency %s: expected an integer" v)
        | "--clock" :: v :: rest | "--chain" :: v :: rest -> (
            match float_of_string_opt v with
            | Some f -> go { o with clock = Some f } fault rest
            | None -> fail "--clock %s: expected a number" v)
        | "--style" :: v :: rest -> (
            match v with
            | "1" -> go { o with style2 = false } fault rest
            | "2" -> go { o with style2 = true } fault rest
            | _ -> fail "--style %s: expected 1 or 2" v)
        | "--limit" :: v :: rest -> (
            (* Accept the CLI's quoting habit: --limit '*=2'. *)
            let v =
              let n = String.length v in
              if n >= 2 && v.[0] = '\'' && v.[n - 1] = '\'' then
                String.sub v 1 (n - 2)
              else v
            in
            match String.split_on_char '=' v with
            | [ c; k ] -> (
                match int_of_string_opt k with
                | Some k -> go { o with limits = o.limits @ [ (c, k) ] } fault rest
                | None -> fail "--limit %s: expected CLASS=COUNT" v)
            | _ -> fail "--limit %s: expected CLASS=COUNT" v)
        | "--inject" :: v :: rest -> (
            match Harness.Fault.of_string v with
            | Some f -> go o (Some f) rest
            | None ->
                fail
                  "--inject %s: unknown fault (corrupt-start, corrupt-col, \
                   corrupt-trace, skew-delay, hang, segv)"
                  v)
        | [ flag ] when String.length flag > 2 && String.sub flag 0 2 = "--" ->
            fail "%s: missing value" flag
        | flag :: _ -> fail "%s: unknown manifest flag" flag
      in
      go default_options None flags

let parse_file path =
  if not (Sys.file_exists path) then
    Error
      (Diag.input ~code:"batch.manifest"
         (path ^ ": no such manifest file"))
  else begin
    let ic = open_in path in
    let lines = In_channel.input_lines ic in
    close_in ic;
    let rec go acc lineno = function
      | [] ->
          if acc = [] then
            Error
              (Diag.input ~code:"batch.manifest" ~file:path
                 "manifest contains no jobs")
          else Ok (List.rev acc)
      | l :: rest -> (
          match parse_line ~file:path ~line:lineno l with
          | Error d -> Error d
          | Ok None -> go acc (lineno + 1) rest
          | Ok (Some e) -> go (e :: acc) (lineno + 1) rest)
    in
    go [] 1 lines
  end
