(** Minimal JSON values for the batch journal.

    The journal is JSON Lines: one object per record, written with a
    single [write] and fsynced, parsed back on [--resume]. This module
    is deliberately tiny — just enough JSON to round-trip our own
    records without an external dependency. Strings are escaped with
    {!Diag.json_string}; numbers are OCaml [int]s and [float]s. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact one-line rendering (no newlines, ever — one record must stay
    one journal line). *)

val parse : string -> (t, string) result
(** Parse one JSON document; trailing whitespace is allowed, trailing
    garbage is an error. *)

val default_max_document_bytes : int
(** 1 MiB — the default cap for {!parse_bounded} and the daemon's frame
    decoder. *)

val parse_bounded : ?max_bytes:int -> string -> (t, Diag.t) result
(** {!parse} behind a byte ceiling: documents over [max_bytes] are
    rejected with a typed [batch.frame-too-large] input error {e before}
    any parsing work, so untrusted inputs (socket frames, oversized
    journal lines) cannot buffer unboundedly; parse failures become
    [batch.jsonl] errors. *)

(** Accessors; all return [None] on a type or key mismatch. *)

val member : string -> t -> t option
val to_str : t -> string option
val to_int : t -> int option
val to_float : t -> float option
(** [to_float] also accepts [Int]. *)

val str : string -> t -> string option
(** [str key obj] = [member key obj |> to_str], and similarly below. *)

val int : string -> t -> int option
val float : string -> t -> float option
