type record = {
  id : string;
  seed : int;
  descr : string;
  attempt : int;
  final : bool;
  verdict : Verdict.t;
  seconds : float;
}

let record_to_json r =
  Jsonl.to_string
    (Jsonl.Obj
       ([
          ("id", Jsonl.String r.id);
          ("seed", Jsonl.Int r.seed);
          ("descr", Jsonl.String r.descr);
          ("attempt", Jsonl.Int r.attempt);
          ("final", Jsonl.Bool r.final);
          ("seconds", Jsonl.Float r.seconds);
        ]
       @ Verdict.to_fields r.verdict))

let record_of_json v =
  match
    ( Jsonl.str "id" v,
      Jsonl.int "seed" v,
      Jsonl.str "descr" v,
      Jsonl.int "attempt" v,
      Jsonl.member "final" v,
      Jsonl.float "seconds" v )
  with
  | Some id, Some seed, Some descr, Some attempt, Some (Jsonl.Bool final),
    Some seconds ->
      Result.map
        (fun verdict -> { id; seed; descr; attempt; final; verdict; seconds })
        (Verdict.of_fields v)
  | _ -> Error "record missing id/seed/descr/attempt/final/seconds"

type writer = { fd : Unix.file_descr }

let open_writer path =
  { fd = Unix.openfile path [ Unix.O_WRONLY; O_CREAT; O_APPEND ] 0o644 }

(* One write(2) per record: O_APPEND makes concurrent appends land whole,
   and a SIGKILL cannot tear a write that already entered the kernel — the
   worst case is a missing trailing newline from a crash between records,
   which load drops. EINTR restarts the write; any other Unix error (EPIPE
   on a redirected journal, ENOSPC, EBADF) becomes a typed diagnostic so a
   vanished sink never raises through a daemon's supervision loop. *)
let append w r =
  let line = record_to_json r ^ "\n" in
  let b = Bytes.of_string line in
  let rec write_all off =
    if off < Bytes.length b then
      match Unix.write w.fd b off (Bytes.length b - off) with
      | n -> write_all (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all off
  in
  match
    write_all 0;
    Unix.fsync w.fd
  with
  | () -> Ok ()
  | exception Unix.Unix_error (err, _, _) ->
      Error
        (Diag.input ~code:"batch.journal-write"
           (Printf.sprintf "journal append failed: %s"
              (Unix.error_message err)))

let close w = try Unix.close w.fd with Unix.Unix_error _ -> ()

let load path =
  if not (Sys.file_exists path) then Ok []
  else begin
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let body = really_input_string ic len in
    close_in ic;
    let lines = String.split_on_char '\n' body in
    (* A well-formed journal ends in '\n', so the split yields a trailing
       "" we drop; a torn final line has no terminator and is dropped too
       (its record never completed). *)
    let rec whole = function
      | [] | [ _ ] -> []
      | l :: rest -> l :: whole rest
    in
    let lines = whole lines in
    let rec parse acc lineno = function
      | [] -> Ok (List.rev acc)
      | l :: rest when String.trim l = "" -> parse acc (lineno + 1) rest
      | l :: rest -> (
          match Result.bind (Jsonl.parse l) record_of_json with
          | Ok r -> parse (r :: acc) (lineno + 1) rest
          | Error msg ->
              Error
                (Diag.input ~code:"batch.journal" ~file:path
                   ~span:(Diag.point ~line:lineno ~col:1)
                   (Printf.sprintf "corrupt journal record: %s" msg)))
    in
    parse [] 1 lines
  end

let finals records =
  let tbl = Hashtbl.create 64 in
  List.iter (fun r -> if r.final then Hashtbl.replace tbl r.id r) records;
  tbl

let last_attempts records =
  let tbl = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace tbl r.id r) records;
  tbl

let equivalent a b =
  let fa = finals a and fb = finals b in
  Hashtbl.length fa = Hashtbl.length fb
  && Hashtbl.fold
       (fun id (ra : record) ok ->
         ok
         &&
         match Hashtbl.find_opt fb id with
         | Some rb -> Verdict.equal ra.verdict rb.verdict
         | None -> false)
       fa true
