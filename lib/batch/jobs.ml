let digest s = Digest.to_hex (Digest.string s)

let payload_failed payload =
  match Jsonl.parse payload with
  | Ok doc -> (
      match Jsonl.str "status" doc with
      | Some ("violations" | "failed") -> true
      | Some _ -> false
      | None -> true)
  | Error _ -> true

let record_failed (r : Journal.record) =
  match r.Journal.verdict with
  | Verdict.Done payload -> payload_failed payload
  | v -> Verdict.is_failure v

(* --- Generic structured-payload jobs ------------------------------------ *)

let serialize work () = Result.map Jsonl.to_string (work ())

let generic ?degraded ~id ~seed ~descr work =
  Pool.job ~id ~seed ~descr (serialize work)
    ?degraded:(Option.map serialize degraded)

(* --- Manifest jobs ----------------------------------------------------- *)

let via_string = function
  | Harness.Driver.Primary -> "primary"
  | Harness.Driver.Fallback f -> "fallback:" ^ f

let outcome_payload (o : Harness.Driver.outcome) =
  let fields =
    [
      ( "status",
        Jsonl.String
          (if o.Harness.Driver.violations = [] then "clean" else "violations")
      );
      ( "violations",
        Jsonl.List
          (List.map
             (fun d -> Jsonl.String d.Diag.code)
             o.Harness.Driver.violations) );
      ("sched", Jsonl.String (via_string o.Harness.Driver.sched_via));
      ( "bind",
        Jsonl.String
          (match o.Harness.Driver.bind_via with
          | Some v -> via_string v
          | None -> "none") );
      ("fault_applied", Jsonl.Bool o.Harness.Driver.fault_applied);
    ]
    @
    match o.Harness.Driver.schedule with
    | None -> []
    | Some s ->
        [
          ("cs", Jsonl.Int s.Core.Schedule.cs);
          ( "fus",
            Jsonl.Int
              (List.fold_left
                 (fun n (_, k) -> n + k)
                 0
                 (Core.Schedule.fu_counts s)) );
        ]
  in
  Jsonl.to_string (Jsonl.Obj fields)

let run_entry ~budgets ~options (e : Manifest.entry) () =
  match Manifest.load_graph e.Manifest.e_spec with
  | Error d -> Error d
  | Ok g -> (
      let o = Harness.Driver.run ?fault:e.Manifest.e_fault ~budgets ~options g in
      match o.Harness.Driver.stopped with
      | Some d -> Error d
      | None -> Ok (outcome_payload o))

let of_entry ~budgets ~seed (e : Manifest.entry) =
  let descr = Manifest.descr e in
  (* The id folds in the DFG file's contents when the spec is a file, so
     editing an input invalidates stale journal records on resume. *)
  let content =
    if Sys.file_exists e.Manifest.e_spec then
      try Digest.to_hex (Digest.file e.Manifest.e_spec) with _ -> ""
    else ""
  in
  let id = digest (String.concat "|" [ "entry"; descr; content ]) in
  let degraded_budgets =
    {
      budgets with
      Harness.Driver.stage_seconds =
        budgets.Harness.Driver.stage_seconds /. 2.0;
    }
  in
  let degraded_options =
    { e.Manifest.e_options with Harness.Driver.baseline_only = true }
  in
  Pool.job ~id ~seed ~descr
    (run_entry ~budgets ~options:e.Manifest.e_options e)
    ~degraded:(run_entry ~budgets:degraded_budgets ~options:degraded_options e)

let summarize records =
  let buf = Buffer.create 256 in
  let counts = Hashtbl.create 8 in
  let bump k = Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)) in
  List.iter
    (fun (r : Journal.record) ->
      let status =
        match r.Journal.verdict with
        | Verdict.Done payload when payload_failed payload -> "violations"
        | v -> Verdict.label v
      in
      bump (if record_failed r then "failed" else "completed");
      Printf.bprintf buf "#%d %s: %s%s\n" (r.Journal.seed + 1) r.Journal.descr
        (match r.Journal.verdict with
        | Verdict.Done _ -> status
        | v -> Verdict.describe v)
        (if r.Journal.attempt > 1 then " (after retry)" else ""))
    records;
  let n k = Option.value ~default:0 (Hashtbl.find_opt counts k) in
  Printf.bprintf buf "batch: %d job(s) — %d completed, %d failed\n"
    (List.length records) (n "completed") (n "failed");
  Buffer.contents buf

(* --- Fuzz jobs --------------------------------------------------------- *)

let classified_payload (c : Harness.Fuzz.classified) =
  let fields =
    match c with
    | Harness.Fuzz.C_clean { c_degraded } ->
        [ ("status", Jsonl.String "clean");
          ("degraded", Jsonl.Bool c_degraded) ]
    | Harness.Fuzz.C_stopped code ->
        [ ("status", Jsonl.String "stopped"); ("code", Jsonl.String code) ]
    | Harness.Fuzz.C_skipped -> [ ("status", Jsonl.String "skipped") ]
    | Harness.Fuzz.C_failed f ->
        [
          ("status", Jsonl.String "failed");
          ("kind", Jsonl.String f.Harness.Fuzz.f_kind);
          ("fseed", Jsonl.Int f.Harness.Fuzz.f_seed);
          ("detail", Jsonl.String f.Harness.Fuzz.f_detail);
          ("size", Jsonl.Int f.Harness.Fuzz.f_size);
        ]
        @
        (match f.Harness.Fuzz.f_file with
        | Some p -> [ ("file", Jsonl.String p) ]
        | None -> [])
  in
  Jsonl.to_string (Jsonl.Obj fields)

let classified_of_payload ~seed payload =
  match Jsonl.parse payload with
  | Error _ ->
      Harness.Fuzz.C_failed
        { f_kind = "crash:payload"; f_seed = seed;
          f_detail = "unparsable worker payload"; f_size = 0; f_file = None }
  | Ok doc -> (
      match Jsonl.str "status" doc with
      | Some "clean" ->
          Harness.Fuzz.C_clean
            {
              c_degraded =
                (match Jsonl.member "degraded" doc with
                | Some (Jsonl.Bool b) -> b
                | _ -> false);
            }
      | Some "stopped" ->
          Harness.Fuzz.C_stopped
            (Option.value ~default:"?" (Jsonl.str "code" doc))
      | Some "skipped" -> Harness.Fuzz.C_skipped
      | Some "failed" ->
          Harness.Fuzz.C_failed
            {
              f_kind = Option.value ~default:"?" (Jsonl.str "kind" doc);
              f_seed = Option.value ~default:seed (Jsonl.int "fseed" doc);
              f_detail = Option.value ~default:"" (Jsonl.str "detail" doc);
              f_size = Option.value ~default:0 (Jsonl.int "size" doc);
              f_file = Jsonl.str "file" doc;
            }
      | _ ->
          Harness.Fuzz.C_failed
            { f_kind = "crash:payload"; f_seed = seed;
              f_detail = "worker payload has no status"; f_size = 0;
              f_file = None })

let degrade_generated (g : Harness.Fuzz.generated) =
  {
    g with
    Harness.Fuzz.g_case =
      Result.map
        (fun (c : Harness.Fuzz.case) ->
          {
            c with
            Harness.Fuzz.options =
              { c.Harness.Fuzz.options with Harness.Driver.baseline_only = true };
          })
        g.Harness.Fuzz.g_case;
  }

let fuzz_jobs ?fault ?(budgets = Harness.Driver.default_budgets) ?corpus_dir
    ~campaign_seed generated =
  List.map
    (fun (g : Harness.Fuzz.generated) ->
      let case_src =
        match g.Harness.Fuzz.g_case with
        | Error d -> "generator-error:" ^ d.Diag.code
        | Ok c -> (
            Harness.Driver.options_to_flags c.Harness.Fuzz.options
            ^ "|"
            ^
            match Harness.Fuzz.graph_of_case c with
            | Ok gr -> Dfg.Parser.to_source gr
            | Error _ -> "unbuildable")
      in
      let id =
        digest
          (String.concat "|"
             [
               "fuzz";
               string_of_int campaign_seed;
               string_of_int g.Harness.Fuzz.g_run;
               (match fault with
               | Some f -> Harness.Fault.to_string f
               | None -> "");
               case_src;
             ])
      in
      let descr =
        Printf.sprintf "fuzz run %d (seed %d)" g.Harness.Fuzz.g_run
          g.Harness.Fuzz.g_seed
      in
      (* The job seed is the case seed: monotone in the run index, so
         seed order IS run order, and verdict-level failures surface the
         same seed the sequential campaign reports. *)
      let degraded_budgets =
        {
          budgets with
          Harness.Driver.stage_seconds =
            budgets.Harness.Driver.stage_seconds /. 2.0;
        }
      in
      Pool.job ~id ~seed:g.Harness.Fuzz.g_seed ~descr
        (fun () ->
          Ok (classified_payload (Harness.Fuzz.execute ?fault ~budgets ?corpus_dir g)))
        ~degraded:(fun () ->
          Ok
            (classified_payload
               (Harness.Fuzz.execute ?fault ~budgets:degraded_budgets
                  ?corpus_dir (degrade_generated g)))))
    generated

let fuzz_report records =
  let ordered =
    List.sort
      (fun (a : Journal.record) b -> compare a.Journal.seed b.Journal.seed)
      records
  in
  Harness.Fuzz.report_of_classified
    (List.map
       (fun (r : Journal.record) ->
         match r.Journal.verdict with
         | Verdict.Done payload ->
             classified_of_payload ~seed:r.Journal.seed payload
         | Verdict.Rejected d ->
             Harness.Fuzz.C_failed
               { f_kind = "crash:worker"; f_seed = r.Journal.seed;
                 f_detail = Diag.to_string d; f_size = 0; f_file = None }
         | Verdict.Timeout ->
             Harness.Fuzz.C_failed
               { f_kind = "timeout"; f_seed = r.Journal.seed;
                 f_detail = "worker SIGKILLed at its wall-clock deadline";
                 f_size = 0; f_file = None }
         | Verdict.Oom ->
             Harness.Fuzz.C_failed
               { f_kind = "oom"; f_seed = r.Journal.seed;
                 f_detail = "worker aborted at the heap ceiling"; f_size = 0;
                 f_file = None }
         | Verdict.Crashed c ->
             Harness.Fuzz.C_failed
               {
                 f_kind =
                   (match c with
                   | Verdict.Signal s -> "crash:" ^ s
                   | Verdict.Exit n -> Printf.sprintf "crash:exit-%d" n);
                 f_seed = r.Journal.seed;
                 f_detail = Verdict.describe r.Journal.verdict;
                 f_size = 0;
                 f_file = None;
               })
       ordered)
