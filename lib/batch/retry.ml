type policy = { max_attempts : int; deadline_scale : float }

let default = { max_attempts = 2; deadline_scale = 0.5 }
let none = { max_attempts = 1; deadline_scale = 1.0 }
let of_retries n = { default with max_attempts = 1 + max 0 n }

let should_retry p ~attempt verdict =
  attempt < p.max_attempts
  && match verdict with Verdict.Timeout | Verdict.Oom -> true | _ -> false

let deadline p ~attempt base =
  base *. (p.deadline_scale ** float_of_int (attempt - 1))
