type policy = {
  max_attempts : int;
  deadline_scale : float;
  base_delay : float;
  max_delay : float;
}

let default =
  { max_attempts = 2; deadline_scale = 0.5; base_delay = 0.05; max_delay = 2.0 }

let none = { default with max_attempts = 1; deadline_scale = 1.0 }
let of_retries n = { default with max_attempts = 1 + max 0 n }

let backoff ?(max_attempts = 4) ?(base_delay = 0.05) ?(max_delay = 2.0) () =
  {
    max_attempts = max 1 max_attempts;
    deadline_scale = 1.0;
    base_delay = Float.max 0.001 base_delay;
    max_delay = Float.max base_delay max_delay;
  }

let forever ?base_delay ?max_delay () =
  { (backoff ?base_delay ?max_delay ()) with max_attempts = max_int }

let exhausted p ~attempt = attempt >= p.max_attempts

let should_retry p ~attempt verdict =
  attempt < p.max_attempts
  && match verdict with Verdict.Timeout | Verdict.Oom -> true | _ -> false

let deadline p ~attempt base =
  base *. (p.deadline_scale ** float_of_int (attempt - 1))

(* Decorrelated jitter (the "decorrelated" variant of capped exponential
   backoff): each delay is drawn uniformly from [base, 3 * previous],
   capped at the ceiling, so independent clients that failed together
   spread back out instead of retrying in lockstep. *)
let next_delay p ~rng ~prev =
  let prev = Float.max p.base_delay prev in
  let hi = Float.min p.max_delay (prev *. 3.0) in
  let span = Float.max 0.0 (hi -. p.base_delay) in
  p.base_delay +. Random.State.float rng span
