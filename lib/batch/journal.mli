(** Crash-safe JSONL journal of batch job verdicts.

    One line per completed attempt, appended with a single [write(2)] and
    fsynced before {!append} returns, so a SIGKILLed (or power-cut) batch
    leaves a prefix of whole records plus at most one torn trailing line —
    which {!load} tolerates and drops. {!Pool.run} with [~resume:true]
    reloads the journal and skips every job whose final verdict is already
    recorded, making an interrupted batch deterministically resumable. *)

type record = {
  id : string;
      (** Stable job digest (inputs + options + fault); the resume key. *)
  seed : int;
      (** Submission-order / campaign seed — aggregation key, so
          summaries do not depend on worker completion order. *)
  descr : string;  (** Human label, e.g. ["diffeq --cs 4"]. *)
  attempt : int;  (** 1-based; retries append a second record. *)
  final : bool;
      (** [false] only for a [Timeout]/[Oom] attempt the retry policy
          re-ran; resume restarts such jobs at the next attempt. *)
  verdict : Verdict.t;
  seconds : float;  (** Wall-clock of this attempt (informational). *)
}

val record_to_json : record -> string
val record_of_json : Jsonl.t -> (record, string) result

type writer

val open_writer : string -> writer
(** Open (create) for append. *)

val append : writer -> record -> (unit, Diag.t) result
(** One line, one [write] (EINTR-restarted), then fsync. A failed write
    or fsync is a typed [batch.journal-write] error — never an uncaught
    [Unix_error] — so long-lived supervisors can log and keep running. *)

val close : writer -> unit

val load : string -> (record list, Diag.t) result
(** Records in file order. A missing file is an empty journal; an
    unparsable non-trailing line is a [batch.journal] input error; a torn
    trailing line (no newline) is silently dropped. *)

val finals : record list -> (string, record) Hashtbl.t
(** Last final record per job id. *)

val last_attempts : record list -> (string, record) Hashtbl.t
(** Last record (final or not) per job id. *)

val equivalent : record list -> record list -> bool
(** Same job ids with {!Verdict.equal} final verdicts — the
    resume-after-SIGKILL acceptance check. Order, timings and non-final
    attempts are ignored. *)
