(** Deterministic random DFGs for property tests and scalability benches. *)

type spec = {
  ops : int;  (** Number of operations (>= 1). *)
  kinds : Dfg.Op.kind list;  (** Kind universe drawn from (non-empty). *)
  inputs : int;  (** Number of primary inputs (>= 1). *)
  locality : int;
      (** Operands are drawn from the previous [locality] nodes (or primary
          inputs), shaping depth: small = deep chains, large = wide DAGs. *)
  guard_prob : float;  (** Probability a node is guarded (needs [Lt] first). *)
}

val default : spec
(** 30 ops over [+ - *], 4 inputs, locality 8, no guards. *)

val generate : ?spec:spec -> seed:int -> unit -> (Dfg.Graph.t, Diag.t) result
(** A validated DAG; the same seed and spec always produce the same graph.
    A nonsensical spec ([ops < 1], [inputs < 1], empty kind universe) is an
    [Input] diagnostic; a generated-yet-invalid graph (a generator bug) is
    [Internal]. *)

val generate_exn : ?spec:spec -> seed:int -> unit -> Dfg.Graph.t
(** {!generate}, raising [Invalid_argument] on a bad spec — for tests and
    benches with known-good specs. *)
