let build_exn name rows ~inputs =
  match Dfg.Graph.of_ops ~inputs rows with
  | Ok g -> g
  | Error msg ->
      (* The tables below are static data; a rejection here is a programming
         error in this file, not a runtime input condition. *)
      invalid_arg (Printf.sprintf "workload %s is invalid: %s" name msg)

let op name kind args = (name, kind, args, [])
let gop name kind args guards = (name, kind, args, guards)

let tseng () =
  (* Structured after the FACET/Tseng example: one op of each of
     [* - = & |] plus additions whose concurrency depends on the budget —
     T=4 forces two adders, T=5 fits one of every unit (Table 1, ex. 1). *)
  build_exn "tseng"
    ~inputs:[ "i1"; "i2"; "i3"; "i4"; "i5"; "i6"; "i7"; "i8" ]
    [
      op "t1" Dfg.Op.Add [ "i1"; "i2" ];
      op "t2" Dfg.Op.Add [ "i3"; "i4" ];
      op "t3" Dfg.Op.Mul [ "t1"; "t2" ];
      op "t4" Dfg.Op.Or [ "i5"; "i6" ];
      op "t5" Dfg.Op.Sub [ "t3"; "t4" ];
      op "t6" Dfg.Op.And [ "t1"; "i7" ];
      op "t7" Dfg.Op.Eq [ "t5"; "t6" ];
    ]

let chained_sum () =
  (* Pure add/subtract chains: with a clock period fitting two ALU delays,
     chaining halves the schedule depth (Table 1, ex. 2, feature C). *)
  build_exn "chained_sum"
    ~inputs:[ "a"; "b"; "c"; "d"; "e"; "f" ]
    [
      op "t1" Dfg.Op.Add [ "a"; "b" ];
      op "t2" Dfg.Op.Sub [ "t1"; "c" ];
      op "t3" Dfg.Op.Add [ "t2"; "d" ];
      op "t4" Dfg.Op.Sub [ "t3"; "e" ];
      op "t5" Dfg.Op.Add [ "c"; "d" ];
      op "t6" Dfg.Op.Sub [ "t5"; "f" ];
      op "t7" Dfg.Op.Add [ "t4"; "t6" ];
    ]

let diffeq () =
  build_exn "diffeq"
    ~inputs:[ "x"; "y"; "u"; "dx"; "a"; "three" ]
    [
      op "m1" Dfg.Op.Mul [ "three"; "x" ];
      op "m2" Dfg.Op.Mul [ "u"; "dx" ];
      op "m3" Dfg.Op.Mul [ "three"; "y" ];
      op "m4" Dfg.Op.Mul [ "m1"; "m2" ];
      op "m5" Dfg.Op.Mul [ "m3"; "dx" ];
      op "m6" Dfg.Op.Mul [ "u"; "dx" ];
      op "s1" Dfg.Op.Sub [ "u"; "m4" ];
      op "s2" Dfg.Op.Sub [ "s1"; "m5" ];
      op "a1" Dfg.Op.Add [ "x"; "dx" ];
      op "a2" Dfg.Op.Add [ "y"; "m6" ];
      op "c1" Dfg.Op.Lt [ "a1"; "a" ];
    ]

let facet () =
  build_exn "facet"
    ~inputs:[ "a"; "b"; "c"; "d"; "e"; "f"; "g"; "h" ]
    [
      op "t1" Dfg.Op.Add [ "a"; "b" ];
      op "t2" Dfg.Op.Sub [ "c"; "d" ];
      op "t3" Dfg.Op.And [ "t1"; "e" ];
      op "t4" Dfg.Op.Or [ "t2"; "f" ];
      op "t5" Dfg.Op.Add [ "t3"; "t4" ];
      op "t6" Dfg.Op.Sub [ "t5"; "g" ];
      op "t7" Dfg.Op.And [ "t6"; "h" ];
      op "t8" Dfg.Op.Or [ "t4"; "g" ];
      op "t9" Dfg.Op.Add [ "t8"; "h" ];
    ]

let ar_filter () =
  (* 4-section lattice-ladder: per section one reflection multiply feeding a
     subtract on the forward path and one multiply+add on the backward path;
     ladder taps weighted into the output sum. *)
  let section i fin bin rows =
    let k = Printf.sprintf "k%d" i in
    let t = Printf.sprintf "t%d" i
    and f = Printf.sprintf "f%d" (i - 1)
    and u = Printf.sprintf "u%d" i
    and bn = Printf.sprintf "bn%d" i in
    ( f,
      bn,
      rows
      @ [
          op t Dfg.Op.Mul [ k; bin ];
          op f Dfg.Op.Sub [ fin; t ];
          op u Dfg.Op.Mul [ k; f ];
          op bn Dfg.Op.Add [ bin; u ];
        ] )
  in
  let f4 = "xin" in
  let f3, bn4, rows = section 4 f4 "b3" [] in
  let f2, bn3, rows = section 3 f3 "b2" rows in
  let f1, bn2, rows = section 2 f2 "b1" rows in
  let f0, bn1, rows = section 1 f1 "b0" rows in
  let taps = [ ("w0", "v0", f0); ("w1", "v1", bn1); ("w2", "v2", bn2);
               ("w3", "v3", bn3); ("w4", "v4", bn4) ] in
  let rows =
    rows
    @ List.map (fun (w, v, src) -> op w Dfg.Op.Mul [ v; src ]) taps
    @ [
        op "y1" Dfg.Op.Add [ "w0"; "w1" ];
        op "y2" Dfg.Op.Add [ "y1"; "w2" ];
        op "y3" Dfg.Op.Add [ "y2"; "w3" ];
        op "y4" Dfg.Op.Add [ "y3"; "w4" ];
      ]
  in
  build_exn "ar_filter"
    ~inputs:
      [ "xin"; "k1"; "k2"; "k3"; "k4"; "b0"; "b1"; "b2"; "b3";
        "v0"; "v1"; "v2"; "v3"; "v4" ]
    rows

let fir16 () =
  let taps = List.init 16 Fun.id in
  let products =
    List.map
      (fun i ->
        op
          (Printf.sprintf "p%d" i)
          Dfg.Op.Mul
          [ Printf.sprintf "c%d" i; Printf.sprintf "x%d" i ])
      taps
  in
  (* Balanced adder tree over p0..p15; an odd leftover carries upward. *)
  let rec tree level names rows =
    match names with
    | [] | [ _ ] -> rows
    | _ ->
        let rec pair acc idx = function
          | a :: b :: rest ->
              let s = Printf.sprintf "s%d_%d" level idx in
              pair ((s, op s Dfg.Op.Add [ a; b ]) :: acc) (idx + 1) rest
          | leftover -> (List.rev acc, leftover)
        in
        let made, leftover = pair [] 0 names in
        let next = List.map fst made @ leftover in
        tree (level + 1) next (rows @ List.map snd made)
  in
  let names = List.map (fun i -> Printf.sprintf "p%d" i) taps in
  let rows = products @ tree 1 names [] in
  build_exn "fir16"
    ~inputs:
      (List.map (fun i -> Printf.sprintf "x%d" i) taps
      @ List.map (fun i -> Printf.sprintf "c%d" i) taps)
    rows

let dct8 () =
  let rot prefix a b ca cb rows =
    (* plane rotation: (a*ca + b*cb, a*cb - b*ca) *)
    let m1 = prefix ^ "m1" and m2 = prefix ^ "m2"
    and m3 = prefix ^ "m3" and m4 = prefix ^ "m4"
    and o1 = prefix ^ "p" and o2 = prefix ^ "q" in
    ( o1,
      o2,
      rows
      @ [
          op m1 Dfg.Op.Mul [ a; ca ];
          op m2 Dfg.Op.Mul [ b; cb ];
          op o1 Dfg.Op.Add [ m1; m2 ];
          op m3 Dfg.Op.Mul [ a; cb ];
          op m4 Dfg.Op.Mul [ b; ca ];
          op o2 Dfg.Op.Sub [ m3; m4 ];
        ] )
  in
  let stage1 =
    List.concat_map
      (fun i ->
        let x = Printf.sprintf "x%d" i and y = Printf.sprintf "x%d" (7 - i) in
        [
          op (Printf.sprintf "s%d" i) Dfg.Op.Add [ x; y ];
          op (Printf.sprintf "d%d" i) Dfg.Op.Sub [ x; y ];
        ])
      [ 0; 1; 2; 3 ]
  in
  let even =
    [
      op "t0" Dfg.Op.Add [ "s0"; "s3" ];
      op "t1" Dfg.Op.Add [ "s1"; "s2" ];
      op "t2" Dfg.Op.Sub [ "s0"; "s3" ];
      op "t3" Dfg.Op.Sub [ "s1"; "s2" ];
      op "X0" Dfg.Op.Add [ "t0"; "t1" ];
      op "X4" Dfg.Op.Sub [ "t0"; "t1" ];
    ]
  in
  let x2, x6, rot1 = rot "r26" "t2" "t3" "c1" "c2" [] in
  let a1, a7, rot2 = rot "r17" "d0" "d3" "c3" "c4" [] in
  let a3, a5, rot3 = rot "r35" "d1" "d2" "c5" "c6" [] in
  (* x2/x6 are already the final X2/X6 coefficients. *)
  let final =
    [
      op "X1" Dfg.Op.Add [ a1; a3 ];
      op "X3" Dfg.Op.Sub [ a1; a3 ];
      op "X5" Dfg.Op.Add [ a5; a7 ];
      op "X7" Dfg.Op.Sub [ a7; a5 ];
    ]
  in
  ignore x2;
  ignore x6;
  build_exn "dct8"
    ~inputs:
      (List.init 8 (fun i -> Printf.sprintf "x%d" i)
      @ List.init 6 (fun i -> Printf.sprintf "c%d" (i + 1)))
    (stage1 @ even @ rot1 @ rot2 @ rot3 @ final)

let ewf () =
  (* EWF-shaped: four add-multiply-add filter sections in series — the
     multiplications sit ON the critical path, the real elliptic wave
     filter's defining property — plus coefficient-preparation and output
     adds. 26 additions, 8 multiplications; critical path 17 with a
     two-cycle multiplier (the paper's ex. 6 operating point), 13 with a
     single-cycle one. *)
  let section j rows =
    let s i = Printf.sprintf "%s%d" i j in
    let prev = if j = 1 then "x" else Printf.sprintf "d%d" (j - 1) in
    let p_in = if j = 1 then "p1" else s "p" in
    rows
    @ (if j = 1 then []
       else [ op (s "p") Dfg.Op.Add [ s "r"; s "rr" ] ])
    @ [
        op (s "q") Dfg.Op.Add [ s "t"; s "tt" ];
        op (s "e") Dfg.Op.Add [ prev; p_in ];
        op (s "m") Dfg.Op.Mul [ s "e"; s "c" ];
        op (s "m2") Dfg.Op.Mul [ s "e"; s "cc" ];
        op (s "d") Dfg.Op.Add [ s "m"; s "q" ];
        op (s "g") Dfg.Op.Add [ s "m2"; s "d" ];
      ]
  in
  let rows = List.fold_left (fun rows j -> section j rows) [] [ 1; 2; 3; 4 ] in
  let tail =
    [
      op "out" Dfg.Op.Add [ "d4"; "s1" ];
      op "h1" Dfg.Op.Add [ "g1"; "g2" ];
      op "h2" Dfg.Op.Add [ "h1"; "g3" ];
      op "out2" Dfg.Op.Add [ "h2"; "s2" ];
      op "k1" Dfg.Op.Add [ "q2"; "q3" ];
      op "k2" Dfg.Op.Add [ "k1"; "q4" ];
      op "k3" Dfg.Op.Add [ "q1"; "p2" ];
    ]
  in
  let section_inputs =
    List.concat_map
      (fun j ->
        let s i = Printf.sprintf "%s%d" i j in
        [ s "c"; s "cc"; s "t"; s "tt" ]
        @ if j = 1 then [] else [ s "r"; s "rr" ])
      [ 1; 2; 3; 4 ]
  in
  build_exn "ewf"
    ~inputs:([ "x"; "s1"; "s2"; "p1" ] @ section_inputs)
    (rows @ tail)

let biquad () =
  (* Two direct-form-II-transposed biquad sections in cascade:
     y = b0*w + s1;  s1' = b1*w - a1*y + s2;  s2' = b2*w - a2*y
     with w = section input. 10 multiplications, 6 additions,
     4 subtractions per the two sections. *)
  let section j xin rows =
    let s i = Printf.sprintf "%s%d" i j in
    ( s "y",
      rows
      @ [
          op (s "m0") Dfg.Op.Mul [ s "b0"; xin ];
          op (s "y") Dfg.Op.Add [ s "m0"; s "s1" ];
          op (s "m1") Dfg.Op.Mul [ s "b1"; xin ];
          op (s "ma1") Dfg.Op.Mul [ s "a1"; s "y" ];
          op (s "t1") Dfg.Op.Sub [ s "m1"; s "ma1" ];
          op (s "s1n") Dfg.Op.Add [ s "t1"; s "s2" ];
          op (s "m2") Dfg.Op.Mul [ s "b2"; xin ];
          op (s "ma2") Dfg.Op.Mul [ s "a2"; s "y" ];
          op (s "s2n") Dfg.Op.Sub [ s "m2"; s "ma2" ];
        ] )
  in
  let y1, rows = section 1 "xin" [] in
  let _, rows = section 2 y1 rows in
  let inputs =
    "xin"
    :: List.concat_map
         (fun j ->
           List.map
             (fun i -> Printf.sprintf "%s%d" i j)
             [ "b0"; "b1"; "b2"; "a1"; "a2"; "s1"; "s2" ])
         [ 1; 2 ]
  in
  build_exn "biquad" ~inputs rows

let cond_example () =
  build_exn "cond"
    ~inputs:[ "a"; "b"; "c" ]
    [
      op "c1" Dfg.Op.Lt [ "a"; "b" ];
      gop "t1" Dfg.Op.Add [ "a"; "c" ] [ ("c1", true) ];
      gop "t2" Dfg.Op.Add [ "a"; "c" ] [ ("c1", false) ];
      gop "t3" Dfg.Op.Mul [ "t1"; "b" ] [ ("c1", true) ];
      gop "t4" Dfg.Op.Sub [ "t2"; "b" ] [ ("c1", false) ];
      gop "t5" Dfg.Op.Mul [ "t2"; "c" ] [ ("c1", false) ];
    ]

let all () =
  [
    ("ex1", tseng ());
    ("ex2", chained_sum ());
    ("ex3", ar_filter ());
    ("ex4", fir16 ());
    ("ex5", dct8 ());
    ("ex6", ewf ());
  ]

let by_name = function
  | "ex1" | "tseng" -> Some (tseng ())
  | "ex2" | "chained" | "chained_sum" -> Some (chained_sum ())
  | "ex3" | "ar" | "ar_filter" -> Some (ar_filter ())
  | "ex4" | "fir16" | "fir" -> Some (fir16 ())
  | "ex5" | "dct8" | "dct" -> Some (dct8 ())
  | "ex6" | "ewf" -> Some (ewf ())
  | "diffeq" -> Some (diffeq ())
  | "facet" -> Some (facet ())
  | "biquad" -> Some (biquad ())
  | "cond" -> Some (cond_example ())
  | _ -> None
