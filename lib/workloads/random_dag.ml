type spec = {
  ops : int;
  kinds : Dfg.Op.kind list;
  inputs : int;
  locality : int;
  guard_prob : float;
}

let default =
  {
    ops = 30;
    kinds = [ Dfg.Op.Add; Dfg.Op.Sub; Dfg.Op.Mul ];
    inputs = 4;
    locality = 8;
    guard_prob = 0.0;
  }

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let check_spec spec =
  let bad code msg = Error (Diag.input ~code msg) in
  let* () =
    if spec.ops < 1 then
      bad "random-dag.ops" "Random_dag.generate: ops must be >= 1"
    else Ok ()
  in
  let* () =
    if spec.inputs < 1 then
      bad "random-dag.inputs" "Random_dag.generate: inputs must be >= 1"
    else Ok ()
  in
  if spec.kinds = [] then
    bad "random-dag.kinds" "Random_dag.generate: empty kind universe"
  else Ok ()

let generate ?(spec = default) ~seed () =
  let* () = check_spec spec in
  let rng = Prng.create seed in
  let input_names = List.init spec.inputs (Printf.sprintf "in%d") in
  (* Guards reference an early comparison node when requested. *)
  let want_guards = spec.guard_prob > 0. in
  let cond_name = "gcond" in
  (* Guard scoping: an op guarded on (c, arm) may read unguarded values or
     same-arm values; unguarded ops read only unguarded values. Keep one
     pool per context. *)
  let pool_plain = ref (Array.of_list input_names) in
  let pool_true = ref [||] in
  let pool_false = ref [||] in
  let add_value guards v =
    match guards with
    | [] -> pool_plain := Array.append !pool_plain [| v |]
    | [ (_, true) ] -> pool_true := Array.append !pool_true [| v |]
    | _ -> pool_false := Array.append !pool_false [| v |]
  in
  let draw_operand guards =
    let arm_pool =
      match guards with
      | [] -> [||]
      | [ (_, true) ] -> !pool_true
      | _ -> !pool_false
    in
    (* Prefer recent values (locality window) over the combined pools. *)
    let plain = !pool_plain in
    let total = Array.length plain + Array.length arm_pool in
    let idx_from_tail k =
      (* k counts back from the freshest values across both pools. *)
      if k < Array.length arm_pool then
        arm_pool.(Array.length arm_pool - 1 - k)
      else plain.(Array.length plain - 1 - (k - Array.length arm_pool))
    in
    let window = min total (spec.locality + spec.inputs) in
    idx_from_tail (Prng.int rng window)
  in
  let rows = ref [] in
  if want_guards then begin
    let a = draw_operand [] and b = draw_operand [] in
    rows := [ (cond_name, Dfg.Op.Lt, [ a; b ], []) ]
    (* The condition itself stays out of the operand pools so guarded math
       never consumes it as data. *)
  end;
  for i = 0 to spec.ops - 1 do
    let kind = Prng.pick rng spec.kinds in
    let name = Printf.sprintf "n%d" i in
    let guards =
      if want_guards && Prng.float rng < spec.guard_prob then
        [ (cond_name, Prng.bool rng) ]
      else []
    in
    let args = List.init (Dfg.Op.arity kind) (fun _ -> draw_operand guards) in
    rows := (name, kind, args, guards) :: !rows;
    add_value guards name
  done;
  match Dfg.Graph.of_ops ~inputs:input_names (List.rev !rows) with
  | Ok g -> Ok g
  | Error msg ->
      Error
        (Diag.internal ~code:"random-dag.invalid-graph"
           ("Random_dag.generate produced invalid graph: " ^ msg))

let generate_exn ?spec ~seed () =
  match generate ?spec ~seed () with
  | Ok g -> g
  | Error d -> invalid_arg (Diag.message d)
