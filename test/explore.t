The design-space exploration command: a sweep spec expands into a job
lattice, every point runs under the supervised batch pool, and the
results fold into a Pareto front over (csteps, ALU area, MUX area,
registers). Wall time is kept out of the dominance vector and the
reports, so this output is locked byte-for-byte.

A tiny 2-axis sweep (two weight vectors x two time budgets) over the
builtin differential-equation example:

  $ printf 'graph diffeq\nweights 1/1/1/1 1/1/1/20\ncs 4 6\n' > sweep.spec
  $ ../bin/synth.exe explore sweep.spec --cache cache.jsonl --journal journal.jsonl
  sweep: 4 seed point(s), 0 refined, 4 total
  cache: 0 hit(s); pool: 4 fresh evaluation(s), 0 resumed; 0 infeasible, 0 failed
  #  point                               csteps  FUs  ALU um2  MUX um2  REG  total um2
  -  ----------------------------------  ------  ---  -------  -------  ---  ---------
  2  mfsa lib=default s1 w=1/1/1/20 T=4       4    5    34690     3360    8      43250
  0  mfsa lib=default s1 w=1/1/1/1 T=4        4    5    34690     3360    8      43250
  3  mfsa lib=default s1 w=1/1/1/20 T=6       6    5    30862     3900    8      39962
  1  mfsa lib=default s1 w=1/1/1/1 T=6        6    5    30862     3900    8      39962
  front: 4 non-dominated of 4 solved point(s)

The cache is content-addressed (key = digest of the canonicalized DFG
plus the full canonical option vector), so the second run evaluates
nothing — every point is a cache hit:

  $ ../bin/synth.exe explore sweep.spec --cache cache.jsonl
  sweep: 4 seed point(s), 0 refined, 4 total
  cache: 4 hit(s); pool: 0 fresh evaluation(s), 0 resumed; 0 infeasible, 0 failed
  #  point                               csteps  FUs  ALU um2  MUX um2  REG  total um2
  -  ----------------------------------  ------  ---  -------  -------  ---  ---------
  2  mfsa lib=default s1 w=1/1/1/20 T=4       4    5    34690     3360    8      43250
  0  mfsa lib=default s1 w=1/1/1/1 T=4        4    5    34690     3360    8      43250
  3  mfsa lib=default s1 w=1/1/1/20 T=6       6    5    30862     3900    8      39962
  1  mfsa lib=default s1 w=1/1/1/1 T=6        6    5    30862     3900    8      39962
  front: 4 non-dominated of 4 solved point(s)

--csv emits every evaluated point with its content key, front
membership and source:

  $ ../bin/synth.exe explore sweep.spec --cache cache.jsonl --csv
  index,key,engine,library,style,weights,constraint,status,csteps,units,alu_um2,mux_um2,reg,total_um2,front,source
  0,b1f8a6dd3350bd05bf1d10a7b9c700aa,mfsa,default,1,1/1/1/1,T=4,ok,4,5,34690,3360,8,43250,yes,cache
  1,58af5cfd5efbc5acad2c541b0b96182d,mfsa,default,1,1/1/1/1,T=6,ok,6,5,30862,3900,8,39962,yes,cache
  2,b987c21a2d36f21577b4b6bedceeff95,mfsa,default,1,1/1/1/20,T=4,ok,4,5,34690,3360,8,43250,yes,cache
  3,b83c02d9b659dbba5829a8703a922c9c,mfsa,default,1,1/1/1/20,T=6,ok,6,5,30862,3900,8,39962,yes,cache

--dot-front draws the dominance graph (all four points tie onto the
front here, so there are no edges):

  $ ../bin/synth.exe explore sweep.spec --cache cache.jsonl --dot-front | head -n 3
  digraph front {
    rankdir=LR;
    node [shape=box];

A planted process fault (hang) is contained by the pool's watchdog:
the point times out, the sweep is partial (exit 6), the other points
still make the front:

  $ printf 'graph diffeq\nweights 1/1/1/1 1/1/1/20\ncs 4 6\ninject hang 3\n' > hang.spec
  $ ../bin/synth.exe explore hang.spec --cache hcache.jsonl --journal hjournal.jsonl --deadline 2
  sweep: 4 seed point(s), 0 refined, 4 total
  cache: 0 hit(s); pool: 4 fresh evaluation(s), 0 resumed; 0 infeasible, 1 failed
  #  point                               csteps  FUs  ALU um2  MUX um2  REG  total um2
  -  ----------------------------------  ------  ---  -------  -------  ---  ---------
  2  mfsa lib=default s1 w=1/1/1/20 T=4       4    5    34690     3360    8      43250
  0  mfsa lib=default s1 w=1/1/1/1 T=4        4    5    34690     3360    8      43250
  1  mfsa lib=default s1 w=1/1/1/1 T=6        6    5    30862     3900    8      39962
  front: 3 non-dominated of 3 solved point(s)
  failed: mfsa lib=default s1 w=1/1/1/20 T=6 +hang: timeout
  error: error[explore.partial-failure] 1 of 4 point(s) failed
  [6]

  $ grep -c '"verdict":"timeout"' hjournal.jsonl
  1

Failures are never cached (they may be environmental), but --resume
replays the journalled timeout verdict instead of re-forking the
worker: a warm re-run spawns zero fresh evaluations:

  $ ../bin/synth.exe explore hang.spec --cache hcache.jsonl --journal hjournal.jsonl --resume --deadline 2
  sweep: 4 seed point(s), 0 refined, 4 total
  cache: 3 hit(s); pool: 0 fresh evaluation(s), 1 resumed; 0 infeasible, 1 failed
  #  point                               csteps  FUs  ALU um2  MUX um2  REG  total um2
  -  ----------------------------------  ------  ---  -------  -------  ---  ---------
  2  mfsa lib=default s1 w=1/1/1/20 T=4       4    5    34690     3360    8      43250
  0  mfsa lib=default s1 w=1/1/1/1 T=4        4    5    34690     3360    8      43250
  1  mfsa lib=default s1 w=1/1/1/1 T=6        6    5    30862     3900    8      39962
  front: 3 non-dominated of 3 solved point(s)
  failed: mfsa lib=default s1 w=1/1/1/20 T=6 +hang: timeout
  error: error[explore.partial-failure] 1 of 4 point(s) failed
  [6]

--resume without a journal is a usage error (exit 2); a malformed spec
is an input error (exit 3) with a file:line span:

  $ ../bin/synth.exe explore hang.spec --resume
  error: error[explore.usage] --resume requires --journal PATH
  [2]

  $ printf 'graph diffeq\nweights 1/1/1\n' > bad.spec
  $ ../bin/synth.exe explore bad.spec
  error: error[explore.spec] bad.spec:2:1: 1/1/1: malformed weight vector (T/ALU/MUX/REG, e.g. 1/1/1/20)
  [3]

synth compare shares the CSV renderer:

  $ ../bin/synth.exe compare diffeq --cs 4 --csv
  scheduler,units,widths,valid,via
  MFS,"2 x *, 1 x -, 1 x +, 1 x <",42780,yes,primary
  list,"2 x *, 1 x -, 1 x +, 1 x <",42580,yes,primary
  FDS,"2 x *, 1 x -, 1 x +, 1 x <",42580,yes,primary
  annealing,"2 x *, 1 x -, 1 x +, 1 x <",41860,yes,primary
