let test name f = Alcotest.test_case name `Quick f

let compile_ok src = Helpers.check_okd "compile" (Dfg.Frontend.compile src)

let straight_line () =
  let g = compile_ok "input x, y;\ns = x + y;\np = s * x;\n" in
  Alcotest.(check int) "two nodes" 2 (Dfg.Graph.num_nodes g);
  Alcotest.(check (list string)) "inputs" [ "x"; "y" ] (Dfg.Graph.inputs g);
  let p = Option.get (Dfg.Graph.find g "p") in
  Alcotest.(check (list string)) "p args" [ "s"; "x" ] p.Dfg.Graph.args

let precedence () =
  let g = compile_ok "input a, b, c;\nr = a + b * c;\n" in
  (* b*c binds tighter: r = add a (mul b c). *)
  let r = Option.get (Dfg.Graph.find g "r") in
  Alcotest.(check bool) "r is add" true (r.Dfg.Graph.kind = Dfg.Op.Add);
  let tmp = List.nth r.Dfg.Graph.args 1 in
  let t = Option.get (Dfg.Graph.find g tmp) in
  Alcotest.(check bool) "temp is mul" true (t.Dfg.Graph.kind = Dfg.Op.Mul)

let parentheses () =
  let g = compile_ok "input a, b, c;\nr = (a + b) * c;\n" in
  let r = Option.get (Dfg.Graph.find g "r") in
  Alcotest.(check bool) "r is mul" true (r.Dfg.Graph.kind = Dfg.Op.Mul)

let left_associativity () =
  let g = compile_ok "input a, b, c;\nr = a - b - c;\n" in
  (* (a-b)-c, not a-(b-c). *)
  let env = [ ("a", 10); ("b", 3); ("c", 2) ] in
  let v = Helpers.check_ok "eval" (Sim.Eval.run g env) in
  Alcotest.(check (option int)) "r = 5" (Some 5) (Sim.Eval.value v "r")

let unary_ops () =
  let g = compile_ok "input a;\nn = -a;\nm = ~a;\n" in
  let v = Helpers.check_ok "eval" (Sim.Eval.run g [ ("a", 5) ]) in
  Alcotest.(check (option int)) "neg" (Some (-5)) (Sim.Eval.value v "n");
  Alcotest.(check (option int)) "not" (Some (-6)) (Sim.Eval.value v "m")

let constants () =
  let g = compile_ok "input x;\ny = 3 * x + 1;\n" in
  Alcotest.(check bool) "c3 input exists" true (List.mem "c3" (Dfg.Graph.inputs g));
  let env = Dfg.Frontend.const_env g in
  Alcotest.(check (option int)) "c3 binding" (Some 3) (List.assoc_opt "c3" env);
  Alcotest.(check (option int)) "c1 binding" (Some 1) (List.assoc_opt "c1" env);
  let v = Helpers.check_ok "eval" (Sim.Eval.run g (("x", 4) :: env)) in
  Alcotest.(check (option int)) "y = 13" (Some 13) (Sim.Eval.value v "y")

let comparisons_and_shifts () =
  let g = compile_ok "input a, b;\nlt = a < b;\nsh = a << 2;\neq = a == b;\n" in
  let env = ("a", 3) :: ("b", 7) :: Dfg.Frontend.const_env g in
  let v = Helpers.check_ok "eval" (Sim.Eval.run g env) in
  Alcotest.(check (option int)) "lt" (Some 1) (Sim.Eval.value v "lt");
  Alcotest.(check (option int)) "sh" (Some 12) (Sim.Eval.value v "sh");
  Alcotest.(check (option int)) "eq" (Some 0) (Sim.Eval.value v "eq")

let conditionals () =
  let src =
    "input a, b;\n\
     c = a < b;\n\
     if (c) { z = a + b; } else { z = a - b; }\n"
  in
  let g = compile_ok src in
  let z = Option.get (Dfg.Graph.find g "z") in
  let z_else = Option.get (Dfg.Graph.find g "z_else") in
  Alcotest.(check (list (pair string bool))) "then guard" [ ("c", true) ]
    z.Dfg.Graph.guards;
  Alcotest.(check (list (pair string bool))) "else guard" [ ("c", false) ]
    z_else.Dfg.Graph.guards;
  Alcotest.(check bool) "mutually exclusive" true
    (Dfg.Graph.mutually_exclusive g z.Dfg.Graph.id z_else.Dfg.Graph.id)

let nested_conditionals () =
  let src =
    "input a, b;\n\
     c1 = a < b;\n\
     c2 = a > 0;\n\
     if (c1) { if (c2) { w = a + b; } }\n"
  in
  let g = compile_ok src in
  let w = Option.get (Dfg.Graph.find g "w") in
  Alcotest.(check int) "two guards" 2 (List.length w.Dfg.Graph.guards)

let mov_assignment () =
  let g = compile_ok "input a;\nb = a;\n" in
  let b = Option.get (Dfg.Graph.find g "b") in
  Alcotest.(check bool) "materialised as mov" true (b.Dfg.Graph.kind = Dfg.Op.Mov)

let comments_and_whitespace () =
  let g =
    compile_ok
      "# leading comment\ninput a;  // trailing comment\n\n  r = a + a ; # done\n"
  in
  Alcotest.(check int) "one node" 1 (Dfg.Graph.num_nodes g)

let err ?line sub src =
  let d = Helpers.check_errd src (Dfg.Frontend.compile src) in
  let msg = Diag.message d in
  Alcotest.(check bool)
    (Printf.sprintf "%S in %S" sub msg)
    true (Helpers.contains ~sub msg);
  match line with
  | None -> ()
  | Some l -> (
      match d.Diag.span with
      | None -> Alcotest.failf "no span on %S" msg
      | Some span -> Alcotest.(check int) "span line" l span.Diag.line)

let errors () =
  err ~line:1 "unexpected character" "r = $;\n";
  err "not defined" "input a;\nr = a + zz;\n";
  err "assigned twice" "input a;\nr = a;\nr = a;\n";
  err "expected" "input a\nr = a;\n";
  err ~line:2 "expected" "input a;\nr = a +;\n";
  err "inputs cannot" "input a;\nc = a < a;\nif (c) { input b; }\n"

let diffeq_in_language () =
  (* The HAL behaviour written as behaviour, then synthesised end to end. *)
  let src =
    "input x, y, u, dx, a;\n\
     x1 = x + dx;\n\
     u1 = u - 3 * x * u * dx - 3 * y * dx;\n\
     y1 = y + u * dx;\n\
     c  = x1 < a;\n"
  in
  let g = compile_ok src in
  Alcotest.(check bool) "has multiplications" true
    (List.assoc_opt "*" (Dfg.Graph.count_by_class g) <> None);
  let lib = Celllib.Ncr.for_graph g in
  let cs = Dfg.Bounds.critical_path g + 1 in
  let o = Helpers.check_okd "mfsa" (Core.Mfsa.run ~library:lib ~cs g) in
  Helpers.check_schedule o.Core.Mfsa.schedule;
  let delay _ = 1 in
  let ctrl =
    Helpers.check_ok "controller"
      (Rtl.Controller.generate o.Core.Mfsa.datapath ~delay)
  in
  let env =
    [ ("x", 2); ("y", 5); ("u", 3); ("dx", 1); ("a", 10) ]
    @ Dfg.Frontend.const_env g
  in
  match Sim.Equiv.check o.Core.Mfsa.datapath ctrl ~env with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Diag.to_string e)

let compiled_matches_classic () =
  (* The front-end diffeq computes the same values as the hand-built one. *)
  let src =
    "input x, y, u, dx, a;\n\
     u1 = u - 3 * x * u * dx - 3 * y * dx;\n"
  in
  let g = compile_ok src in
  let env =
    [ ("x", 2); ("y", 5); ("u", 3); ("dx", 1); ("a", 10) ]
    @ Dfg.Frontend.const_env g
  in
  let v = Helpers.check_ok "eval" (Sim.Eval.run g env) in
  (* From test_sim: u1 = 3 - 18 - 15 = -30. *)
  Alcotest.(check (option int)) "u1" (Some (-30)) (Sim.Eval.value v "u1")

let suite =
  [
    test "straight-line compilation" straight_line;
    test "operator precedence" precedence;
    test "parentheses" parentheses;
    test "left associativity" left_associativity;
    test "unary operators" unary_ops;
    test "integer constants become inputs" constants;
    test "comparisons and shifts" comparisons_and_shifts;
    test "if/else guards" conditionals;
    test "nested conditionals accumulate guards" nested_conditionals;
    test "plain copy becomes mov" mov_assignment;
    test "comments and whitespace" comments_and_whitespace;
    test "error reporting" errors;
    test "diffeq written as behaviour synthesises" diffeq_in_language;
    test "front-end semantics match hand evaluation" compiled_matches_classic;
  ]
