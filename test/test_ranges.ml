let test name f = Alcotest.test_case name `Quick f

module R = Analysis.Ranges

let parse_exn src =
  match Dfg.Parser.parse src with
  | Ok g -> g
  | Error d -> Alcotest.failf "test graph does not parse: %s" (Diag.to_string d)

let codes fs = List.map (fun f -> f.Analysis.Finding.diag.Diag.code) fs

(* ---- Deterministic facts ---------------------------------------------- *)

let min_width_basics () =
  Alcotest.(check int) "0 fits 1 bit" 1 (R.min_width (R.exact 0));
  Alcotest.(check int) "-1 fits 1 bit" 1 (R.min_width (R.exact (-1)));
  Alcotest.(check int) "1 needs 2 bits" 2 (R.min_width (R.exact 1));
  Alcotest.(check int) "[0,15] needs 5 bits" 5 (R.min_width (R.of_interval 0 15));
  Alcotest.(check int) "[-16,15] needs 5 bits" 5
    (R.min_width (R.of_interval (-16) 15));
  Alcotest.(check int) "[-8,7] needs 4 bits" 4 (R.min_width (R.of_interval (-8) 7));
  Alcotest.(check bool) "top is full width" true
    (R.min_width R.top >= Celllib.Library.word_width);
  Alcotest.(check int) "of_width roundtrips" 6 (R.min_width (R.of_width 6))

let inference_example () =
  let g =
    parse_exn
      "input a b\nrange a 0 15\nrange b 0 15\ns = add a b\np = mul a b\n"
  in
  let t = R.analyze g in
  Alcotest.(check int) "a: [0,15]" 5 (R.width_of t "a");
  Alcotest.(check int) "s: [0,30]" 6 (R.width_of t "s");
  Alcotest.(check int) "p: [0,225]" 9 (R.width_of t "p");
  Alcotest.(check int) "loop-free converges in one pass" 1 (R.passes t)

let unannotated_clean () =
  let g = Helpers.diamond () in
  let t = R.analyze g in
  Alcotest.(check bool) "all facts top" true (R.fact_of t "s" = R.top);
  Alcotest.(check int) "no findings" 0 (List.length (R.check g))

let planted_overflow () =
  (* a is declared in [16,31]; a 4-bit copy holds at most [-8,7]: every
     execution overflows, so this must be a static error (exit 5) —
     never first caught by simulation. *)
  let g = parse_exn "input a\nrange a 16 31\ns = mov a\nwidth s 4\n" in
  let fs = R.check g in
  Alcotest.(check bool) "width.overflow reported" true
    (List.mem "width.overflow" (codes (Analysis.Finding.errors fs)));
  Alcotest.(check int) "internal error exits 5" 5 (Analysis.Finding.exit_code fs)

let truncation_warning () =
  (* [0,31] against a 4-bit contract overlaps [-8,7]: overflow possible
     but not certain — a warning, which never changes the exit code. *)
  let g = parse_exn "input a\nrange a 0 31\ns = mov a\nwidth s 4\n" in
  let fs = R.check g in
  Alcotest.(check bool) "width.truncation reported" true
    (List.mem "width.truncation" (codes (Analysis.Finding.warnings fs)));
  Alcotest.(check int) "no errors" 0 (List.length (Analysis.Finding.errors fs));
  Alcotest.(check int) "warnings keep exit 0" 0 (Analysis.Finding.exit_code fs)

let narrow_nodes_get_faster_delays () =
  let g =
    parse_exn "input a b\nrange a 0 15\nrange b 0 15\ns = add a b\n"
  in
  let lib = Celllib.Ncr.for_graph g in
  let t = R.analyze g in
  let delays = R.node_delays lib g t in
  match List.assoc_opt "s" delays with
  | None -> Alcotest.fail "narrow add not listed in node_delays"
  | Some d ->
      Alcotest.(check bool) "strictly below full-width delay" true
        (d < lib.Celllib.Library.prop_delay Dfg.Op.Add)

(* ---- Lattice properties ----------------------------------------------- *)

(* Random facts: mostly intervals around small values, with exact points
   and top mixed in so the masks get exercised too. *)
let fact_gen =
  QCheck2.Gen.(
    oneof
      [
        return R.top;
        map R.exact (int_range (-300) 300);
        map
          (fun (a, b) -> R.of_interval (min a b) (max a b))
          (pair (int_range (-300) 300) (int_range (-300) 300));
        map R.of_width (int_range 1 12);
      ])

let join_monotone =
  Helpers.qcheck ~count:500 "join is an upper bound"
    QCheck2.Gen.(pair fact_gen fact_gen)
    (fun (x, y) ->
      let j = R.join x y in
      R.leq x j && R.leq y j && R.leq x (R.join x x))

let widen_over_join =
  Helpers.qcheck ~count:500 "widen over-approximates join"
    QCheck2.Gen.(pair fact_gen fact_gen)
    (fun (x, y) -> R.leq (R.join x y) (R.widen x y))

let join_keeps_members =
  Helpers.qcheck ~count:500 "join keeps conforming values"
    QCheck2.Gen.(pair (int_range (-300) 300) (int_range (-300) 300))
    (fun (a, b) ->
      let j = R.join (R.exact a) (R.exact b) in
      R.contains j a && R.contains j b)

(* ---- Transfer soundness ----------------------------------------------- *)

(* For random concrete operands wrapped in facts that contain them, the
   abstract transfer must contain the concrete [Op.eval] result — for
   every operation kind, including the total-function edge cases
   (division by zero, out-of-range shifts). *)
let transfer_case_gen =
  QCheck2.Gen.(
    let operand =
      map
        (fun (v, lo_pad, hi_pad, shape) ->
          let f =
            match shape with
            | 0 -> R.exact v
            | 1 -> R.top
            | _ -> R.of_interval (v - lo_pad) (v + hi_pad)
          in
          (v, f))
        (quad (int_range (-200) 200) (int_range 0 30) (int_range 0 30)
           (int_range 0 4))
    in
    (* Memory kinds have no pure [Op.eval]; their transfer is exercised by
       the whole-graph soundness test over array workloads instead. *)
    let kind =
      oneofl (List.filter (fun k -> not (Dfg.Op.is_mem k)) Dfg.Op.all)
    in
    map
      (fun (k, o1, o2) ->
        let args = if Dfg.Op.arity k = 1 then [ o1 ] else [ o1; o2 ] in
        (k, args))
      (triple kind operand operand))

let transfer_over_approximates =
  Helpers.qcheck ~count:2000 "transfer over-approximates Op.eval"
    transfer_case_gen
    (fun (k, args) ->
      let concrete = Dfg.Op.eval k (List.map fst args) in
      R.contains (R.transfer k (List.map snd args)) concrete)

(* ---- Whole-graph soundness on random DAGs ----------------------------- *)

(* Annotate every input of a random DAG with a range, evaluate the graph
   concretely on values drawn inside those ranges, and require every
   node's concrete value to conform to its inferred fact. *)
let annotated_dag_gen =
  QCheck2.Gen.(
    map
      (fun (g, vseed) ->
        let rng = Workloads.Prng.create vseed in
        let annotated =
          List.map
            (fun x ->
              let v = Workloads.Prng.int rng 101 - 50 in
              let lo = v - Workloads.Prng.int rng 8 in
              let hi = v + Workloads.Prng.int rng 8 in
              (x, v, lo, hi))
            (Dfg.Graph.inputs g)
        in
        let src =
          Dfg.Parser.to_source g
          ^ String.concat ""
              (List.map
                 (fun (x, _, lo, hi) ->
                   Printf.sprintf "range %s %d %d\n" x lo hi)
                 annotated)
        in
        (src, List.map (fun (x, v, _, _) -> (x, v)) annotated))
      (pair (Helpers.wide_dag_gen ~max_ops:20 ()) (int_bound 100_000)))

let analyze_sound_on_random_dags =
  Helpers.qcheck ~count:200 "inferred facts contain concrete evaluation"
    annotated_dag_gen
    (fun (src, env) ->
      let g = parse_exn src in
      let t = R.analyze g in
      match Sim.Eval.run g env with
      | Error msg -> Alcotest.failf "concrete eval failed: %s" msg
      | Ok values ->
          List.for_all (fun (name, v) -> R.contains (R.fact_of t name) v) values)

(* Declaring each node's own inferred width back onto the graph must
   never report overflow or truncation: the contract matches the fact
   exactly, so either would be a false positive. (Unreachable-arm and
   constant-result warnings may legitimately fire on random ranges.) *)
let no_false_positive_overflows =
  Helpers.qcheck ~count:200 "self-inferred widths never overflow"
    annotated_dag_gen
    (fun (src, _env) ->
      let g = parse_exn src in
      let t = R.analyze g in
      let src' =
        src
        ^ String.concat ""
            (List.map
               (fun nd ->
                 Printf.sprintf "width %s %d\n" nd.Dfg.Graph.name
                   (R.width_of t nd.Dfg.Graph.name))
               (Dfg.Graph.nodes g))
      in
      List.for_all
        (fun c -> c <> "width.overflow" && c <> "width.truncation")
        (codes (R.check (parse_exn src'))))

(* ---- Fixpoint termination --------------------------------------------- *)

let corpus_fixpoint () =
  List.iter
    (fun (name, g) ->
      let t = R.analyze g in
      Alcotest.(check int) (name ^ ": one topological pass") 1 (R.passes t);
      Alcotest.(check int) (name ^ ": unannotated, no findings") 0
        (List.length (R.check g)))
    (Workloads.Classic.all ())

let loop_carried_fixpoint () =
  (* x / x__next is the add_iteration_control convention: the growing
     accumulator must be widened to a fixpoint, not iterated forever. *)
  let g =
    parse_exn
      "input x k\nrange x 0 0\nrange k 1 1\nx__next = add x k\n"
  in
  let t = R.analyze g in
  Alcotest.(check bool) "terminates within the pass budget" true
    (R.passes t <= 16);
  Alcotest.(check bool) "fixpoint covers later iterations" true
    (R.contains (R.fact_of t "x" ) 1_000_000);
  Alcotest.(check int) "no findings" 0 (List.length (R.check g))

let fuzz_fixpoint =
  Helpers.qcheck ~count:150 "fixpoint terminates on fuzz DAGs"
    (Helpers.guarded_dag_gen ~max_ops:18 ())
    (fun g ->
      let t = R.analyze g in
      R.passes t <= 16 && R.check g = [])

let near_linear_smoke () =
  (* 25k ops: the fixpoint must stay one topological pass and finish
     promptly — a hang or quadratic blow-up times the suite out. *)
  let g =
    Workloads.Random_dag.generate_exn
      ~spec:{ Workloads.Random_dag.default with Workloads.Random_dag.ops = 25_000 }
      ~seed:42 ()
  in
  let t = R.analyze g in
  Alcotest.(check int) "one pass on a loop-free DAG" 1 (R.passes t);
  Alcotest.(check int) "25k facts, no findings" 0 (List.length (R.check g))

let suite =
  [
    test "min-width basics" min_width_basics;
    test "inference example" inference_example;
    test "unannotated graph is clean" unannotated_clean;
    test "planted overflow is a static error" planted_overflow;
    test "possible overflow is a warning" truncation_warning;
    test "narrow nodes get faster delays" narrow_nodes_get_faster_delays;
    join_monotone;
    widen_over_join;
    join_keeps_members;
    transfer_over_approximates;
    analyze_sound_on_random_dags;
    no_false_positive_overflows;
    test "corpus fixpoint" corpus_fixpoint;
    test "loop-carried fixpoint" loop_carried_fixpoint;
    fuzz_fixpoint;
    test "25k-op near-linear smoke" near_linear_smoke;
  ]
