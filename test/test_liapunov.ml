let test name f = Alcotest.test_case name `Quick f

let pos_gen =
  QCheck2.Gen.map
    (fun (c, s) -> { Core.Frames.col = c; step = s })
    QCheck2.Gen.(pair (int_range 1 8) (int_range 1 12))

let time_step_dominates =
  (* With n >= max column, any position in an earlier step has lower
     energy — the property the paper derives C from. *)
  Helpers.qcheck ~count:300 "time-constrained: earlier step always wins"
    QCheck2.Gen.(pair pos_gen pos_gen)
    (fun (a, b) ->
      let obj = Core.Liapunov.Time_constrained { n = 8 } in
      a.Core.Frames.step >= b.Core.Frames.step
      || Core.Liapunov.value obj a < Core.Liapunov.value obj b)

let resource_col_dominates =
  Helpers.qcheck ~count:300 "resource-constrained: existing unit always wins"
    QCheck2.Gen.(pair pos_gen pos_gen)
    (fun (a, b) ->
      let obj = Core.Liapunov.Resource_constrained { cs = 12 } in
      a.Core.Frames.col >= b.Core.Frames.col
      || Core.Liapunov.value obj a < Core.Liapunov.value obj b)

let best_picks_minimum =
  Helpers.qcheck ~count:200 "best returns the global minimum"
    (QCheck2.Gen.list_size (QCheck2.Gen.int_range 1 12) pos_gen)
    (fun ps ->
      let obj = Core.Liapunov.Time_constrained { n = 8 } in
      match Core.Liapunov.best obj ps with
      | None -> ps = []
      | Some chosen ->
          List.for_all
            (fun p -> Core.Liapunov.value obj chosen <= Core.Liapunov.value obj p)
            ps)

(* The incremental accumulator against the eager re-fold: run an arbitrary
   place/unplace sequence (each event adds a fresh position, or removes a
   random live one), then compare Acc.total with a full fold over whatever
   is still placed. *)
let acc_matches_refold =
  Helpers.qcheck ~count:300 "Acc total = re-fold after random place/unplace"
    QCheck2.Gen.(
      list_size (int_range 0 40)
        (triple pos_gen bool (int_range 0 1000)))
    (fun events ->
      List.for_all
        (fun obj ->
          let acc = Core.Liapunov.Acc.create obj in
          let live = ref [] in
          List.iter
            (fun (pos, unplace, salt) ->
              match (unplace, !live) with
              | true, _ :: _ ->
                  let k = salt mod List.length !live in
                  let victim = List.nth !live k in
                  live := List.filteri (fun i _ -> i <> k) !live;
                  Core.Liapunov.Acc.remove acc victim
              | _ ->
                  live := pos :: !live;
                  Core.Liapunov.Acc.add acc pos)
            events;
          Core.Liapunov.Acc.total acc = Core.Liapunov.total obj !live)
        [
          Core.Liapunov.Time_constrained { n = 8 };
          Core.Liapunov.Resource_constrained { cs = 12 };
        ])

let best_empty () =
  Alcotest.(check bool) "none on empty" true
    (Core.Liapunov.best (Core.Liapunov.Time_constrained { n = 3 }) [] = None)

let best_deterministic_tiebreak () =
  (* cs*x + y with cs=10: (1,3) vs (1,3) duplicates and equal-energy pairs. *)
  let obj = Core.Liapunov.Resource_constrained { cs = 10 } in
  let a = { Core.Frames.col = 1; step = 5 } in
  let b = { Core.Frames.col = 1; step = 5 } in
  Alcotest.(check bool) "stable on duplicates" true
    (Core.Liapunov.best obj [ a; b ] = Some a);
  (* Equal energies cannot happen for distinct positions with these
     objectives, but the tie-break is still exercised through stability. *)
  let c = { Core.Frames.col = 2; step = 1 } in
  let d = { Core.Frames.col = 1; step = 11 } in
  let chosen = Option.get (Core.Liapunov.best obj [ d; c ]) in
  Alcotest.(check int) "smaller energy wins" (Core.Liapunov.value obj chosen)
    (min (Core.Liapunov.value obj c) (Core.Liapunov.value obj d))

let trace_properties () =
  let obj = Core.Liapunov.Time_constrained { n = 4 } in
  let t = Core.Liapunov.Trace.create () in
  Core.Liapunov.Trace.record t obj ~op:0
    ~from_pos:{ Core.Frames.col = 4; step = 6 }
    ~to_pos:{ Core.Frames.col = 1; step = 2 };
  Core.Liapunov.Trace.record t obj ~op:1
    ~from_pos:{ Core.Frames.col = 2; step = 3 }
    ~to_pos:{ Core.Frames.col = 2; step = 3 };
  Alcotest.(check bool) "non-increasing" true (Core.Liapunov.Trace.non_increasing t);
  Alcotest.(check bool) "positive" true (Core.Liapunov.Trace.positive t);
  Alcotest.(check int) "two entries" 2
    (List.length (Core.Liapunov.Trace.entries t))

let trace_detects_increase () =
  let obj = Core.Liapunov.Time_constrained { n = 4 } in
  let t = Core.Liapunov.Trace.create () in
  Core.Liapunov.Trace.record t obj ~op:0
    ~from_pos:{ Core.Frames.col = 1; step = 1 }
    ~to_pos:{ Core.Frames.col = 4; step = 6 };
  Alcotest.(check bool) "increase flagged" false
    (Core.Liapunov.Trace.non_increasing t)

let contraction_factors () =
  let obj = Core.Liapunov.Time_constrained { n = 4 } in
  let t = Core.Liapunov.Trace.create () in
  Core.Liapunov.Trace.record t obj ~op:0
    ~from_pos:{ Core.Frames.col = 4; step = 6 }
    ~to_pos:{ Core.Frames.col = 2; step = 3 };
  let e = List.hd (Core.Liapunov.Trace.entries t) in
  let fx, fy = Core.Liapunov.Trace.contraction e in
  Alcotest.(check (float 1e-9)) "x factor" 0.5 fx;
  Alcotest.(check (float 1e-9)) "y factor" 0.5 fy;
  Alcotest.(check bool) "both in (0,1]" true (fx > 0. && fx <= 1. && fy > 0. && fy <= 1.)

(* Random move frames for the lazy-vs-eager properties: bounded rects (so
   the no-tie side conditions n >= col range and cs >= step range hold), a
   forbidden-step cut and a pseudo-random free predicate. *)
let frame_gen =
  QCheck2.Gen.map
    (fun ((a, b, c, d), (a', b', c', d'), fcut, salt) ->
      ( { Core.Frames.col_lo = a; col_hi = b; step_lo = c; step_hi = d },
        { Core.Frames.col_lo = a'; col_hi = b'; step_lo = c'; step_hi = d' },
        fcut, salt ))
    QCheck2.Gen.(
      quad
        (quad (int_range 1 6) (int_range 0 8) (int_range 1 6) (int_range 0 10))
        (quad (int_range 1 6) (int_range 0 8) (int_range 1 6) (int_range 0 10))
        (int_range 0 6) (int_range 0 50))

let objectives =
  [ Core.Liapunov.Time_constrained { n = 8 };
    Core.Liapunov.Resource_constrained { cs = 12 } ]

let lazy_best_matches_eager =
  Helpers.qcheck ~count:500 "best_lazy equals best over the eager move frame"
    frame_gen
    (fun (pf, rf, fcut, salt) ->
      let forbidden s = s <= fcut in
      let free p =
        (p.Core.Frames.col * 7 + p.Core.Frames.step * 13 + salt) mod 3 <> 0
      in
      List.for_all
        (fun obj ->
          let eager =
            Core.Liapunov.best obj
              (Core.Frames.move_frame ~pf ~rf ~forbidden ~free)
          in
          Core.Liapunov.best_lazy obj ~pf ~rf ~forbidden ~free = eager)
        objectives)

let lazy_worst_matches_eager =
  Helpers.qcheck ~count:500 "worst_lazy finds the eager maximum (ALFAP)"
    frame_gen
    (fun (pf, rf, fcut, salt) ->
      let forbidden s = s <= fcut in
      let free p =
        (p.Core.Frames.col * 11 + p.Core.Frames.step * 5 + salt) mod 4 <> 0
      in
      List.for_all
        (fun obj ->
          let eager =
            match Core.Frames.move_frame ~pf ~rf ~forbidden ~free with
            | [] -> None
            | p :: ps ->
                Some
                  (List.fold_left
                     (fun acc q ->
                       if Core.Liapunov.value obj q > Core.Liapunov.value obj acc
                       then q
                       else acc)
                     p ps)
          in
          Core.Liapunov.worst_lazy obj ~pf ~rf ~forbidden ~free = eager)
        objectives)

let suite =
  [
    time_step_dominates;
    resource_col_dominates;
    best_picks_minimum;
    test "best of empty list" best_empty;
    lazy_best_matches_eager;
    lazy_worst_matches_eager;
    acc_matches_refold;
    test "best tie-breaking" best_deterministic_tiebreak;
    test "trace records Liapunov properties" trace_properties;
    test "trace flags energy increase" trace_detects_increase;
    test "contraction factors of A(k)" contraction_factors;
  ]
