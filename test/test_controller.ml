let test name f = Alcotest.test_case name `Quick f

let unit_delay _ = 1
let alu kinds = Celllib.Library.make_alu kinds

let chain_dp () =
  let g = Helpers.chain4 () in
  Helpers.check_ok "elaborate"
    (Rtl.Datapath.elaborate g ~start:[| 1; 1; 2; 2 |] ~delay:unit_delay ~cs:2
       ~assignments:
         [ (alu [ Dfg.Op.Add ], [ 0; 2 ]); (alu [ Dfg.Op.Add ], [ 1; 3 ]) ])

let micro_ordering () =
  let dp = chain_dp () in
  let ctrl =
    Helpers.check_ok "controller" (Rtl.Controller.generate dp ~delay:unit_delay)
  in
  Alcotest.(check int) "two states" 2 ctrl.Rtl.Controller.steps;
  (* Within step 1, producer c1 (node 0) must precede chained c2 (node 1). *)
  let step1 =
    List.filter (fun m -> m.Rtl.Controller.m_step = 1) ctrl.Rtl.Controller.micros
  in
  Alcotest.(check (list int)) "chain order" [ 0; 1 ]
    (List.map (fun m -> m.Rtl.Controller.m_node) step1)

let input_loads () =
  let dp = chain_dp () in
  let ctrl =
    Helpers.check_ok "controller" (Rtl.Controller.generate dp ~delay:unit_delay)
  in
  (* y is consumed in step 2, so it must be preloaded into a register. *)
  Alcotest.(check bool) "y preloaded" true
    (List.mem_assoc "y" ctrl.Rtl.Controller.input_loads)

let chained_value_has_no_dest () =
  let dp = chain_dp () in
  let ctrl =
    Helpers.check_ok "controller" (Rtl.Controller.generate dp ~delay:unit_delay)
  in
  let micro_of n =
    List.find (fun m -> m.Rtl.Controller.m_node = n) ctrl.Rtl.Controller.micros
  in
  (* c1 is consumed only inside step 1 (by chained c2): no register. *)
  Alcotest.(check bool) "c1 unlatched" true ((micro_of 0).Rtl.Controller.m_dest = None);
  (* c2 crosses into step 2: latched. *)
  Alcotest.(check bool) "c2 latched" true ((micro_of 1).Rtl.Controller.m_dest <> None)

let multicycle_latch_step () =
  let g = Helpers.diamond () in
  let delay i = if i <= 1 then 2 else 1 in
  let dp =
    Helpers.check_ok "elaborate"
      (Rtl.Datapath.elaborate g ~start:[| 1; 1; 3 |] ~delay ~cs:3
         ~assignments:
           [ (alu [ Dfg.Op.Mul ], [ 0 ]); (alu [ Dfg.Op.Mul ], [ 1 ]);
             (alu [ Dfg.Op.Add ], [ 2 ]) ])
  in
  let ctrl = Helpers.check_ok "controller" (Rtl.Controller.generate dp ~delay) in
  let m0 =
    List.find (fun m -> m.Rtl.Controller.m_node = 0) ctrl.Rtl.Controller.micros
  in
  Alcotest.(check int) "issued at 1" 1 m0.Rtl.Controller.m_step;
  Alcotest.(check int) "latched at 2" 2 m0.Rtl.Controller.m_latch_step

let guards_carried () =
  let g = Workloads.Classic.cond_example () in
  let lib = Celllib.Ncr.for_graph g in
  let o =
    Helpers.check_okd "mfsa"
      (Core.Mfsa.run ~library:lib ~cs:(Dfg.Bounds.critical_path g) g)
  in
  let ctrl =
    Helpers.check_ok "controller"
      (Rtl.Controller.generate o.Core.Mfsa.datapath ~delay:unit_delay)
  in
  let t1 = (Option.get (Dfg.Graph.find g "t1")).Dfg.Graph.id in
  let m =
    List.find (fun m -> m.Rtl.Controller.m_node = t1) ctrl.Rtl.Controller.micros
  in
  Alcotest.(check (list (pair string bool))) "guard carried" [ ("c1", true) ]
    m.Rtl.Controller.m_guards

let suite =
  [
    test "micros ordered by chaining depth" micro_ordering;
    test "inputs preloaded" input_loads;
    test "chained values are not latched" chained_value_has_no_dest;
    test "multi-cycle results latch at the finish step" multicycle_latch_step;
    test "guards carried into micro-orders" guards_carried;
  ]
