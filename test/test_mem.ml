(* Memory subsystem: array/bank grammar, address edges, port-constrained
   scheduling, the mem.* analysis family and banked simulation. *)

let test name f = Alcotest.test_case name `Quick f
let unit_delay _ = 1

let parse_exn src =
  match Dfg.Parser.parse src with
  | Ok g -> g
  | Error d -> Alcotest.failf "parse failed: %s" (Diag.to_string d)

let id g n = (Option.get (Dfg.Graph.find g n)).Dfg.Graph.id

let codes fs = List.map (fun f -> f.Analysis.Finding.diag.Diag.code) fs

(* Two loads chained apart so a single port schedules cleanly. *)
let ewf_like =
  "input u i0 i1\n\
   range i0 0 0\n\
   range i1 1 1\n\
   array S 2 bank SB\n\
   mem SB ports 1\n\
   s1 = ld S i0\n\
   s2 = ld S i1\n\
   t = + s1 u\n\
   y = + t s2\n"

(* Four independent loads of one bank feeding a balanced add tree: the
   bank's port count directly bounds the achievable latency. *)
let bunched_loads =
  "input i0 i1 i2 i3\n\
   range i0 0 0\n\
   range i1 1 1\n\
   range i2 2 2\n\
   range i3 3 3\n\
   array A 4 bank B\n\
   a0 = ld A i0\n\
   a1 = ld A i1\n\
   a2 = ld A i2\n\
   a3 = ld A i3\n\
   s0 = + a0 a1\n\
   s1 = + a2 a3\n\
   y = + s0 s1\n"

(* --- Grammar ---------------------------------------------------------- *)

let parser_roundtrip () =
  let g = parse_exn ewf_like in
  let g' = parse_exn (Dfg.Parser.to_source g) in
  Alcotest.(check int) "arrays survive" 1 (List.length (Dfg.Graph.arrays g'));
  let a = List.hd (Dfg.Graph.arrays g') in
  Alcotest.(check int) "size" 2 a.Dfg.Graph.a_size;
  Alcotest.(check string) "bank" "SB" a.Dfg.Graph.a_bank;
  Alcotest.(check int) "ports" 1 (Dfg.Graph.bank_ports g' "SB");
  Alcotest.(check int) "same node count" (Dfg.Graph.num_nodes g)
    (Dfg.Graph.num_nodes g')

let default_bank_is_array_name () =
  let g = parse_exn "input i\nrange i 0 0\narray A 4\nx = ld A i\n" in
  Alcotest.(check (list string)) "bank defaults to array name" [ "A" ]
    (Dfg.Graph.bank_names g)

(* --- Address dependence edges ----------------------------------------- *)

let address_edges () =
  let g =
    parse_exn
      "input i x y\n\
       range i 0 0\n\
       array A 2\n\
       s1 = st A i x\n\
       l1 = ld A i\n\
       s2 = st A i y\n\
       l2 = ld A i\n"
  in
  let preds n = Dfg.Graph.preds g (id g n) in
  Alcotest.(check bool) "RAW: l1 after s1" true (List.mem (id g "s1") (preds "l1"));
  Alcotest.(check bool) "WAW: s2 after s1" true (List.mem (id g "s1") (preds "s2"));
  Alcotest.(check bool) "WAR: s2 after l1" true (List.mem (id g "l1") (preds "s2"));
  Alcotest.(check bool) "RAW: l2 after s2" true (List.mem (id g "s2") (preds "l2"));
  Alcotest.(check bool) "loads unordered" false
    (List.mem (id g "l1") (preds "l2"))

let loads_have_no_mutual_edges () =
  let g = parse_exn bunched_loads in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if a <> b then
            Alcotest.(check bool)
              (Printf.sprintf "%s and %s independent" a b)
              false
              (List.mem (id g a) (Dfg.Graph.preds g (id g b))))
        [ "a0"; "a1"; "a2"; "a3" ])
    [ "a0"; "a1"; "a2"; "a3" ]

(* --- Port-constrained scheduling -------------------------------------- *)

let min_feasible_cs ?ports g =
  let lib = Celllib.Ncr.for_graph g in
  let config =
    { (Core.Config.of_library lib) with Core.Config.mem_ports = ports }
  in
  let floor = Core.Timeframe.min_cs config g in
  let rec search cs =
    if cs > floor + 24 then Alcotest.failf "no feasible cs up to %d" (floor + 24)
    else
      match Core.Mfsa.run ~config ~library:lib ~cs g with
      | Ok o -> (cs, o)
      | Error _ -> search (cs + 1)
  in
  search floor

let doubling_ports_cuts_latency () =
  let g = parse_exn bunched_loads in
  let cs1, _ = min_feasible_cs ~ports:1 g in
  let cs2, _ = min_feasible_cs ~ports:2 g in
  Alcotest.(check bool)
    (Printf.sprintf "2 ports strictly faster (%d < %d)" cs2 cs1)
    true (cs2 < cs1)

let schedule_respects_ports s =
  List.filter
    (fun f -> f.Analysis.Finding.diag.Diag.code = "mem.bank-conflict")
    (Analysis.Sched_lint.schedule s)
  = []

(* Random banked workloads: a handful of pinned-index stores and loads over
   one or two arrays sharing a bank, consumers summing the loads. *)
let mem_graph_gen =
  QCheck2.Gen.map
    (fun (seed, ports) ->
      let rng = Random.State.make [| seed |] in
      let arrays = 1 + Random.State.int rng 2 in
      let size = 2 + Random.State.int rng 3 in
      let buf = Buffer.create 256 in
      let indices = List.init size (fun k -> Printf.sprintf "i%d" k) in
      Buffer.add_string buf
        ("input x " ^ String.concat " " indices ^ "\n");
      List.iteri
        (fun k i -> Buffer.add_string buf (Printf.sprintf "range %s %d %d\n" i k k))
        indices;
      Buffer.add_string buf (Printf.sprintf "mem B ports %d\n" ports);
      let loads = ref [] in
      for a = 0 to arrays - 1 do
        Buffer.add_string buf (Printf.sprintf "array A%d %d bank B\n" a size);
        let accesses = 1 + Random.State.int rng size in
        for k = 0 to accesses - 1 do
          Buffer.add_string buf
            (Printf.sprintf "w%d_%d = st A%d i%d x\n" a k a k);
          Buffer.add_string buf (Printf.sprintf "r%d_%d = ld A%d i%d\n" a k a k);
          loads := Printf.sprintf "r%d_%d" a k :: !loads
        done
      done;
      (match !loads with
      | [ only ] -> Buffer.add_string buf (Printf.sprintf "y = + %s x\n" only)
      | l ->
          List.iteri
            (fun k (a, b) ->
              Buffer.add_string buf (Printf.sprintf "t%d = + %s %s\n" k a b))
            (let rec pair = function
               | a :: b :: rest -> (a, b) :: pair rest
               | [ a ] -> [ (a, "x") ]
               | [] -> []
             in
             pair l);
          let ts =
            List.mapi (fun k _ -> Printf.sprintf "t%d" k)
              (let rec pair = function
                 | _ :: _ :: rest -> () :: pair rest
                 | [ _ ] -> [ () ]
                 | [] -> []
               in
               pair l)
          in
          let rec fold k = function
            | [ last ] -> Buffer.add_string buf (Printf.sprintf "y = + %s x\n" last)
            | a :: b :: rest ->
                Buffer.add_string buf (Printf.sprintf "u%d = + %s %s\n" k a b);
                fold (k + 1) (Printf.sprintf "u%d" k :: rest)
            | [] -> ()
          in
          fold 0 ts);
      parse_exn (Buffer.contents buf))
    QCheck2.Gen.(pair (int_bound 10_000) (int_range 1 3))

let ports_never_oversubscribed =
  Helpers.qcheck ~count:60 "mfsa never oversubscribes bank ports"
    mem_graph_gen
    (fun g ->
      let _, o = min_feasible_cs g in
      schedule_respects_ports o.Core.Mfsa.schedule)

let mfs_time_respects_ports =
  Helpers.qcheck ~count:60 "mfs time mode never oversubscribes bank ports"
    mem_graph_gen
    (fun g ->
      let lib = Celllib.Ncr.for_graph g in
      let config = Core.Config.of_library lib in
      let floor = Core.Timeframe.min_cs config g in
      let rec search cs =
        if cs > floor + 24 then Alcotest.failf "MFS found no feasible cs"
        else
          match Core.Mfs.run ~config g (Core.Mfs.Time { cs }) with
          | Ok m -> m.Core.Mfs.schedule
          | Error _ -> search (cs + 1)
      in
      schedule_respects_ports (search floor))

(* --- Analysis family --------------------------------------------------- *)

let feasibility_port_lower_bound () =
  (* 6 accesses through one port can never fit a 4-step horizon. *)
  let g =
    parse_exn
      "input x y z i\n\
       range i 0 0\n\
       array A 1 bank B\n\
       array C 1 bank B\n\
       array D 1 bank B\n\
       sa = st A i x\n\
       sb = st C i y\n\
       sc = st D i z\n\
       la = ld A i\n\
       lb = ld C i\n\
       lc = ld D i\n\
       t = + la lb\n\
       u = + t lc\n"
  in
  let config = Core.Config.of_library (Celllib.Ncr.for_graph g) in
  let fs = Analysis.Feasibility.check ~cs:4 config g in
  Alcotest.(check bool) "mem.infeasible-ports raised" true
    (List.mem "mem.infeasible-ports" (codes fs))

let oob_constant_index () =
  let g =
    parse_exn
      "input x i\nrange i 5 5\narray A 4\nw = st A i x\ny = ld A i\n"
  in
  let fs = Analysis.Ranges.check g in
  Alcotest.(check bool) "mem.index-out-of-bounds raised" true
    (List.mem "mem.index-out-of-bounds" (codes fs))

let collide_mem_fault_detected () =
  let g = parse_exn ewf_like in
  let lib = Celllib.Ncr.for_graph g in
  let config = Core.Config.of_library lib in
  let cs = Core.Timeframe.min_cs config g in
  let m = Helpers.check_okd "mfs" (Core.Mfs.run ~config g (Core.Mfs.Time { cs })) in
  let planted =
    match Harness.Fault.collide_mem m.Core.Mfs.schedule with
    | Some s -> s
    | None -> Alcotest.fail "collide-mem found no victim pair"
  in
  Alcotest.(check bool) "pristine schedule is port-clean" true
    (schedule_respects_ports m.Core.Mfs.schedule);
  Alcotest.(check bool) "planted conflict caught" true
    (List.mem "mem.bank-conflict" (codes (Analysis.Sched_lint.schedule planted)))

let collide_mem_not_applicable () =
  let g = Helpers.diamond () in
  let m = Helpers.mfs_time g 2 in
  Alcotest.(check bool) "no mem ops -> None" true
    (Harness.Fault.collide_mem m.Core.Mfs.schedule = None)

(* --- Simulation -------------------------------------------------------- *)

let sim_equivalence_on_arrays () =
  let g = parse_exn bunched_loads in
  let cs, o = min_feasible_cs ~ports:1 g in
  ignore cs;
  let ctrl =
    Helpers.check_ok "controller"
      (Rtl.Controller.generate o.Core.Mfsa.datapath ~delay:unit_delay)
  in
  match Sim.Equiv.check_random ~runs:10 o.Core.Mfsa.datapath ctrl with
  | Ok () -> ()
  | Error d -> Alcotest.failf "equivalence failed: %s" (Diag.to_string d)

let store_then_load_through_machine () =
  let g = parse_exn ewf_like in
  let _, o = min_feasible_cs g in
  let ctrl =
    Helpers.check_ok "controller"
      (Rtl.Controller.generate o.Core.Mfsa.datapath ~delay:unit_delay)
  in
  let env = [ ("u", 7); ("i0", 0); ("i1", 1) ] in
  let r =
    Helpers.check_ok "machine" (Sim.Machine.run o.Core.Mfsa.datapath ctrl ~env)
  in
  (* Arrays are zero-initialised: s1 = s2 = 0, t = 7, y = 7. *)
  Alcotest.(check (option int)) "y" (Some 7)
    (List.assoc_opt "y" r.Sim.Machine.values)

(* --- Explore ports axis ------------------------------------------------ *)

let explore_ports_axis () =
  let s =
    Helpers.check_okd "spec"
      (Explore.Spec.parse ~file:"t" "graph g\nports 1 2\n")
  in
  let points = Explore.Lattice.expand s in
  let ports =
    List.sort_uniq compare
      (List.map (fun p -> p.Explore.Lattice.ports) points)
  in
  Alcotest.(check int) "two port settings" 2 (List.length ports);
  Alcotest.(check bool) "descr distinguishes them" true
    (List.exists
       (fun p -> Helpers.contains ~sub:"ports=" (Explore.Lattice.descr p))
       points)

let suite =
  [
    test "parser: array/mem directives round-trip" parser_roundtrip;
    test "parser: bank defaults to array name" default_bank_is_array_name;
    test "edges: RAW/WAW/WAR per array" address_edges;
    test "edges: loads carry no mutual order" loads_have_no_mutual_edges;
    test "mfsa: doubling ports strictly cuts latency" doubling_ports_cuts_latency;
    ports_never_oversubscribed;
    mfs_time_respects_ports;
    test "feasibility: port lower bound fires" feasibility_port_lower_bound;
    test "ranges: constant OOB index flagged" oob_constant_index;
    test "fault: collide-mem caught by bank audit" collide_mem_fault_detected;
    test "fault: collide-mem needs mem ops" collide_mem_not_applicable;
    test "sim: banked datapath equivalent to golden model" sim_equivalence_on_arrays;
    test "sim: store/load round-trip through the machine" store_then_load_through_machine;
    test "explore: ports axis expands distinct points" explore_ports_axis;
  ]
