(* Shared helpers for the test suite. *)

let graph_exn rows ~inputs =
  match Dfg.Graph.of_ops ~inputs rows with
  | Ok g -> g
  | Error msg -> Alcotest.failf "test graph invalid: %s" msg

let op name kind args = (name, kind, args, [])

(* A small diamond: two independent mults feeding an add. *)
let diamond () =
  graph_exn ~inputs:[ "a"; "b"; "c"; "d" ]
    [
      op "m1" Dfg.Op.Mul [ "a"; "b" ];
      op "m2" Dfg.Op.Mul [ "c"; "d" ];
      op "s" Dfg.Op.Add [ "m1"; "m2" ];
    ]

(* A pure chain a -> b -> c -> d of adds. *)
let chain4 () =
  graph_exn ~inputs:[ "x"; "y" ]
    [
      op "c1" Dfg.Op.Add [ "x"; "y" ];
      op "c2" Dfg.Op.Add [ "c1"; "y" ];
      op "c3" Dfg.Op.Add [ "c2"; "y" ];
      op "c4" Dfg.Op.Add [ "c3"; "y" ];
    ]

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let count_occurrences ~sub s =
  let n = String.length sub and m = String.length s in
  if n = 0 then 0
  else begin
    let count = ref 0 in
    for i = 0 to m - n do
      if String.sub s i n = sub then incr count
    done;
    !count
  end

let check_ok what = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "%s failed: %s" what msg

let check_schedule s =
  match Core.Schedule.check s with
  | Ok () -> ()
  | Error errs ->
      Alcotest.failf "schedule invalid: %s" (String.concat "; " errs)

let check_err what = function
  | Ok _ -> Alcotest.failf "%s unexpectedly succeeded" what
  | Error err -> err

(* Diag-returning interfaces: render the diagnostic for failure output. *)
let check_okd what = function
  | Ok v -> v
  | Error d -> Alcotest.failf "%s failed: %s" what (Diag.to_string d)

let check_errd what = function
  | Ok _ -> Alcotest.failf "%s unexpectedly succeeded" what
  | Error (d : Diag.t) -> d

let mfs_time ?config ?max_units g cs =
  check_okd "MFS"
    (Core.Mfs.run ?config ?max_units g (Core.Mfs.Time { cs }))

let fu_count s klass =
  Option.value ~default:0 (List.assoc_opt klass (Core.Schedule.fu_counts s))

let qcheck ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)

(* Random DAG generator wrapped for qcheck: draws a seed, builds the DAG. *)
let dag_gen ?(max_ops = 24) () =
  QCheck2.Gen.map
    (fun (seed, ops) ->
      Workloads.Random_dag.generate_exn
        ~spec:{ Workloads.Random_dag.default with Workloads.Random_dag.ops }
        ~seed ())
    QCheck2.Gen.(pair (int_bound 10_000) (int_range 1 max_ops))

(* Random DAGs over a wide kind universe (shifts, division, logic,
   comparisons) — exercises multi-class scheduling and ALU capability
   handling beyond the arithmetic-only default. *)
let wide_dag_gen ?(max_ops = 20) () =
  let kinds =
    [ Dfg.Op.Add; Dfg.Op.Sub; Dfg.Op.Mul; Dfg.Op.Div; Dfg.Op.And;
      Dfg.Op.Or; Dfg.Op.Xor; Dfg.Op.Shl; Dfg.Op.Lt; Dfg.Op.Neg ]
  in
  QCheck2.Gen.map
    (fun (seed, ops) ->
      Workloads.Random_dag.generate_exn
        ~spec:{ Workloads.Random_dag.default with Workloads.Random_dag.ops; kinds }
        ~seed ())
    QCheck2.Gen.(pair (int_bound 10_000) (int_range 1 max_ops))

(* Same, with a conditional context: ~40% of the ops guarded. *)
let guarded_dag_gen ?(max_ops = 18) () =
  QCheck2.Gen.map
    (fun (seed, ops) ->
      Workloads.Random_dag.generate_exn
        ~spec:
          { Workloads.Random_dag.default with
            Workloads.Random_dag.ops; guard_prob = 0.4 }
        ~seed ())
    QCheck2.Gen.(pair (int_bound 10_000) (int_range 2 max_ops))
