(* Edge cases and failure-injection that do not fit the per-module suites. *)

let test name f = Alcotest.test_case name `Quick f

let resource_mfs_partial_limits () =
  (* Only multipliers limited: other classes are unconstrained and the
     scheduler may provision freely for them. *)
  let g = Workloads.Classic.diffeq () in
  let o =
    Helpers.check_okd "partial limits"
      (Core.Mfs.run g (Core.Mfs.Resource { limits = [ ("*", 2) ] }))
  in
  Helpers.check_schedule o.Core.Mfs.schedule;
  Alcotest.(check bool) "mult cap respected" true
    (Helpers.fu_count o.Core.Mfs.schedule "*" <= 2)

let single_op_graph () =
  let g =
    Helpers.graph_exn ~inputs:[ "a" ] [ Helpers.op "n" Dfg.Op.Neg [ "a" ] ]
  in
  let o = Helpers.mfs_time g 1 in
  Alcotest.(check int) "one step" 1 (Core.Schedule.makespan o.Core.Mfs.schedule);
  let lib = Celllib.Ncr.for_graph g in
  let m = Helpers.check_okd "mfsa" (Core.Mfsa.run ~library:lib ~cs:1 g) in
  Alcotest.(check int) "one ALU" 1 m.Core.Mfsa.cost.Rtl.Cost.n_alus;
  Alcotest.(check int) "no muxes" 0 m.Core.Mfsa.cost.Rtl.Cost.n_mux

let wide_independent_graph () =
  (* 12 independent ops: at cs=1 every op needs its own unit. *)
  let g =
    Helpers.graph_exn ~inputs:[ "a"; "b" ]
      (List.init 12 (fun i ->
           Helpers.op (Printf.sprintf "n%d" i) Dfg.Op.Add [ "a"; "b" ]))
  in
  let o = Helpers.mfs_time g 1 in
  Alcotest.(check int) "12 adders" 12 (Helpers.fu_count o.Core.Mfs.schedule "+");
  let o6 = Helpers.mfs_time g 6 in
  Alcotest.(check int) "2 adders at cs=6" 2
    (Helpers.fu_count o6.Core.Mfs.schedule "+")

let huge_budget_one_unit_each () =
  let g = Workloads.Classic.ewf () in
  let o = Helpers.mfs_time g 60 in
  List.iter
    (fun (c, k) -> Alcotest.(check int) (c ^ " single") 1 k)
    (Core.Schedule.fu_counts o.Core.Mfs.schedule)

let deep_nested_frontend () =
  let src =
    "input a, b;\n\
     c1 = a < b;\n\
     c2 = a > b;\n\
     if (c1) { x = a + b; if (c2) { y = x * a; } else { y2 = x * b; } }\n"
  in
  let g = Helpers.check_okd "compile" (Dfg.Frontend.compile src) in
  let y = Option.get (Dfg.Graph.find g "y") in
  Alcotest.(check (list (pair string bool)))
    "nested guards in order"
    [ ("c1", true); ("c2", true) ]
    y.Dfg.Graph.guards;
  let y2 = Option.get (Dfg.Graph.find g "y2_else") in
  Alcotest.(check (list (pair string bool)))
    "else branch arm"
    [ ("c1", true); ("c2", false) ]
    y2.Dfg.Graph.guards

let frontend_cross_branch_rejected () =
  (* The guard-scoping validation reaches the front end: an else branch
     cannot read a then-branch value. *)
  let src =
    "input a, b;\n\
     c = a < b;\n\
     if (c) { x = a + b; } else { z = x - b; }\n"
  in
  let msg =
    Diag.message (Helpers.check_errd "cross read" (Dfg.Frontend.compile src))
  in
  Alcotest.(check bool) "scoping reported" true
    (Helpers.contains ~sub:"guard scoping" msg
    || Helpers.contains ~sub:"not defined" msg)

let annealing_tiny_budget () =
  let params =
    { Baselines.Annealing.default_params with Baselines.Annealing.sweeps = 1 }
  in
  let g = Workloads.Classic.diffeq () in
  let s = Helpers.check_ok "sa" (Baselines.Annealing.run ~params g ~cs:5) in
  Helpers.check_schedule s

let fds_exact_budget () =
  (* FDS at the exact critical path has zero slack everywhere. *)
  let g = Helpers.chain4 () in
  let s = Helpers.check_ok "fds" (Baselines.Fds.run g ~cs:4) in
  Alcotest.(check bool) "fully serial" true
    (s.Core.Schedule.start = [| 1; 2; 3; 4 |])

let mutex_merge_then_synthesise () =
  (* merge_shared unconditionalises the shared op; everything downstream
     still holds together. *)
  let g =
    Helpers.check_ok "merge"
      (Dfg.Mutex.merge_shared (Workloads.Classic.cond_example ()))
  in
  let lib = Celllib.Ncr.for_graph g in
  let o =
    Helpers.check_okd "mfsa"
      (Core.Mfsa.run ~library:lib ~cs:(Dfg.Bounds.critical_path g) g)
  in
  Helpers.check_schedule o.Core.Mfsa.schedule

let verilog_of_guarded_design () =
  let g = Workloads.Classic.cond_example () in
  let lib = Celllib.Ncr.for_graph g in
  let o =
    Helpers.check_okd "mfsa"
      (Core.Mfsa.run ~library:lib ~cs:(Dfg.Bounds.critical_path g) g)
  in
  let ctrl =
    Helpers.check_ok "ctrl"
      (Rtl.Controller.generate o.Core.Mfsa.datapath ~delay:(fun _ -> 1))
  in
  let v = Rtl.Verilog.emit o.Core.Mfsa.datapath ctrl in
  (* Negative-arm guards appear inverted. *)
  Alcotest.(check bool) "inverted guard" true (Helpers.contains ~sub:"!c1" v)

let schedule_pp_without_columns () =
  let g = Helpers.diamond () in
  let s =
    Core.Schedule.make ~config:Core.Config.default ~cs:2 g [| 1; 1; 2 |]
  in
  let out = Format.asprintf "%a" Core.Schedule.pp s in
  Alcotest.(check bool) "names without units" true
    (Helpers.contains ~sub:"m1" out && not (Helpers.contains ~sub:"m1@" out))

let chained_sum_equivalence_under_chaining () =
  (* MFSA with chaining enabled: same-step ALU-to-ALU wires must still
     compute correctly in the machine. *)
  let g = Workloads.Classic.chained_sum () in
  let lib = Celllib.Ncr.for_graph g in
  let config =
    {
      (Core.Config.of_library lib) with
      Core.Config.chaining =
        Some
          {
            Core.Config.prop_delay = lib.Celllib.Library.prop_delay;
            clock = 100.;
          };
    }
  in
  let cs = Core.Timeframe.min_cs config g in
  Alcotest.(check int) "chained depth" 3 cs;
  let o = Helpers.check_okd "mfsa" (Core.Mfsa.run ~config ~library:lib ~cs g) in
  Helpers.check_schedule o.Core.Mfsa.schedule;
  let ctrl =
    Helpers.check_ok "ctrl"
      (Rtl.Controller.generate o.Core.Mfsa.datapath ~delay:(fun _ -> 1))
  in
  match Sim.Equiv.check_random ~runs:20 o.Core.Mfsa.datapath ctrl with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Diag.to_string e)

let suite =
  [
    test "resource MFS with partial limits" resource_mfs_partial_limits;
    test "single-operation graph" single_op_graph;
    test "wide independent graph" wide_independent_graph;
    test "huge budget converges to one unit per class" huge_budget_one_unit_each;
    test "deeply nested conditionals compile" deep_nested_frontend;
    test "front-end cross-branch read rejected" frontend_cross_branch_rejected;
    test "annealing with one sweep" annealing_tiny_budget;
    test "FDS with zero slack" fds_exact_budget;
    test "merge then synthesise" mutex_merge_then_synthesise;
    test "verilog carries inverted guards" verilog_of_guarded_design;
    test "schedule pp without columns" schedule_pp_without_columns;
    test "chained design computes correctly" chained_sum_equivalence_under_chaining;
  ]
