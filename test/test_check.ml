let test name f = Alcotest.test_case name `Quick f

let unit_delay _ = 1
let alu kinds = Celllib.Library.make_alu kinds

let clean_dp () =
  let g = Helpers.diamond () in
  Helpers.check_ok "elaborate"
    (Rtl.Datapath.elaborate g ~start:[| 1; 1; 2 |] ~delay:unit_delay ~cs:2
       ~assignments:
         [ (alu [ Dfg.Op.Mul ], [ 0 ]); (alu [ Dfg.Op.Mul ], [ 1 ]);
           (alu [ Dfg.Op.Add ], [ 2 ]) ])

let clean_passes () =
  match Rtl.Check.datapath (clean_dp ()) ~delay:unit_delay with
  | Ok () -> ()
  | Error errs -> Alcotest.failf "clean design flagged: %s" (String.concat "; " (List.map Diag.to_string errs))

let occupancy_violation () =
  let g = Helpers.diamond () in
  let dp =
    Helpers.check_ok "elaborate"
      (Rtl.Datapath.elaborate g ~start:[| 1; 1; 2 |] ~delay:unit_delay ~cs:2
         ~assignments:
           [ (alu [ Dfg.Op.Mul ], [ 0; 1 ]); (alu [ Dfg.Op.Add ], [ 2 ]) ])
  in
  let errs =
    List.map Diag.message
      (Helpers.check_err "double booking"
         (Rtl.Check.datapath dp ~delay:unit_delay))
  in
  Alcotest.(check bool) "simultaneous execution caught" true
    (List.exists (Helpers.contains ~sub:"simultaneously") errs)

let multicycle_occupancy () =
  let g = Helpers.diamond () in
  let delay i = if i <= 1 then 2 else 1 in
  (* m2 at step 2 overlaps m1's steps 1-2 on the same unit. *)
  let dp =
    Helpers.check_ok "elaborate"
      (Rtl.Datapath.elaborate g ~start:[| 1; 2; 4 |] ~delay ~cs:4
         ~assignments:
           [ (alu [ Dfg.Op.Mul ], [ 0; 1 ]); (alu [ Dfg.Op.Add ], [ 2 ]) ])
  in
  let errs = Helpers.check_err "overlap" (Rtl.Check.datapath dp ~delay) in
  Alcotest.(check bool) "caught" true (errs <> [])

let pipelined_unit_back_to_back () =
  let g = Helpers.diamond () in
  let delay i = if i <= 1 then 2 else 1 in
  (* Same shape, but on a two-stage pipelined multiplier: legal. *)
  let dp =
    Helpers.check_ok "elaborate"
      (Rtl.Datapath.elaborate g ~start:[| 1; 2; 4 |] ~delay ~cs:4
         ~assignments:
           [ (Celllib.Library.make_alu ~stages:2 [ Dfg.Op.Mul ], [ 0; 1 ]);
             (alu [ Dfg.Op.Add ], [ 2 ]) ])
  in
  match Rtl.Check.datapath dp ~delay with
  | Ok () -> ()
  | Error errs -> Alcotest.failf "pipelined issue flagged: %s" (String.concat "; " (List.map Diag.to_string errs))

let mutex_sharing_allowed () =
  let g = Workloads.Classic.cond_example () in
  let id n = (Option.get (Dfg.Graph.find g n)).Dfg.Graph.id in
  let n = Dfg.Graph.num_nodes g in
  let start = Array.make n 0 in
  start.(id "c1") <- 1;
  start.(id "t1") <- 2;
  start.(id "t2") <- 2;
  start.(id "t3") <- 3;
  start.(id "t4") <- 3;
  start.(id "t5") <- 4;
  let dp =
    Helpers.check_ok "elaborate"
      (Rtl.Datapath.elaborate g ~start ~delay:unit_delay ~cs:4
         ~assignments:
           [ (alu [ Dfg.Op.Lt ], [ id "c1" ]);
             (alu [ Dfg.Op.Add ], [ id "t1"; id "t2" ]);
             (alu [ Dfg.Op.Mul; Dfg.Op.Sub ], [ id "t3"; id "t4"; id "t5" ]) ])
  in
  (match Rtl.Check.datapath dp ~delay:unit_delay with
  | Ok () -> ()
  | Error errs -> Alcotest.failf "exclusive sharing flagged: %s" (String.concat "; " (List.map Diag.to_string errs)));
  let errs =
    Helpers.check_err "sharing disabled"
      (Rtl.Check.datapath ~share_mutex:false dp ~delay:unit_delay)
  in
  Alcotest.(check bool) "flagged without sharing" true (errs <> [])

let style2_flagged () =
  let g = Helpers.diamond () in
  let dp =
    Helpers.check_ok "elaborate"
      (Rtl.Datapath.elaborate g ~start:[| 1; 1; 2 |] ~delay:unit_delay ~cs:2
         ~assignments:
           [ (alu [ Dfg.Op.Mul; Dfg.Op.Add ], [ 0; 2 ]);
             (alu [ Dfg.Op.Mul ], [ 1 ]) ])
  in
  (match Rtl.Check.datapath dp ~delay:unit_delay with
  | Ok () -> ()
  | Error errs -> Alcotest.failf "style 1 should accept: %s" (String.concat "; " (List.map Diag.to_string errs)));
  let errs =
    Helpers.check_err "style 2" (Rtl.Check.datapath ~style2:true dp ~delay:unit_delay)
  in
  Alcotest.(check bool) "self loop flagged" true
    (List.exists
       (fun d -> Helpers.contains ~sub:"self loop" (Diag.message d))
       errs)

let suite =
  [
    test "clean design passes" clean_passes;
    test "ALU double booking caught" occupancy_violation;
    test "multi-cycle overlap caught" multicycle_occupancy;
    test "pipelined unit accepts back-to-back issues" pipelined_unit_back_to_back;
    test "mutually exclusive ops may share an ALU" mutex_sharing_allowed;
    test "style 2 self loops flagged" style2_flagged;
  ]
