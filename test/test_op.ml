let test name f = Alcotest.test_case name `Quick f

let roundtrip () =
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Dfg.Op.to_string k ^ " roundtrips")
        true
        (Dfg.Op.of_string (Dfg.Op.to_string k) = Some k))
    Dfg.Op.all

let symbols_parse () =
  List.iter
    (fun k ->
      match Dfg.Op.of_string (Dfg.Op.symbol k) with
      | Some k' ->
          (* A symbol may be shared only with itself. *)
          Alcotest.(check string)
            "symbol parse" (Dfg.Op.symbol k) (Dfg.Op.symbol k')
      | None -> Alcotest.failf "symbol %s does not parse" (Dfg.Op.symbol k))
    Dfg.Op.all

let unknown_op () =
  Alcotest.(check bool) "garbage rejected" true (Dfg.Op.of_string "frob" = None)

let arities () =
  Alcotest.(check int) "not is unary" 1 (Dfg.Op.arity Dfg.Op.Not);
  Alcotest.(check int) "neg is unary" 1 (Dfg.Op.arity Dfg.Op.Neg);
  Alcotest.(check int) "mov is unary" 1 (Dfg.Op.arity Dfg.Op.Mov);
  Alcotest.(check int) "load is array+index" 2 (Dfg.Op.arity Dfg.Op.Load);
  Alcotest.(check int) "store is array+index+data" 3
    (Dfg.Op.arity Dfg.Op.Store);
  List.iter
    (fun k ->
      if
        k <> Dfg.Op.Not && k <> Dfg.Op.Neg && k <> Dfg.Op.Mov
        && k <> Dfg.Op.Store
      then
        Alcotest.(check int) (Dfg.Op.to_string k ^ " binary") 2 (Dfg.Op.arity k))
    Dfg.Op.all

let commutativity () =
  List.iter
    (fun (k, expected) ->
      Alcotest.(check bool)
        (Dfg.Op.to_string k ^ " commutativity")
        expected (Dfg.Op.is_commutative k))
    [
      (Dfg.Op.Add, true); (Dfg.Op.Mul, true); (Dfg.Op.And, true);
      (Dfg.Op.Eq, true); (Dfg.Op.Sub, false); (Dfg.Op.Div, false);
      (Dfg.Op.Lt, false); (Dfg.Op.Shl, false);
    ]

let eval_arithmetic () =
  let cases =
    [
      (Dfg.Op.Add, [ 3; 4 ], 7);
      (Dfg.Op.Sub, [ 3; 4 ], -1);
      (Dfg.Op.Mul, [ -3; 4 ], -12);
      (Dfg.Op.Div, [ 9; 2 ], 4);
      (Dfg.Op.Div, [ 9; 0 ], 0);
      (Dfg.Op.Mod, [ 9; 4 ], 1);
      (Dfg.Op.Mod, [ 9; 0 ], 0);
      (Dfg.Op.And, [ 12; 10 ], 8);
      (Dfg.Op.Or, [ 12; 10 ], 14);
      (Dfg.Op.Xor, [ 12; 10 ], 6);
      (Dfg.Op.Lt, [ 1; 2 ], 1);
      (Dfg.Op.Lt, [ 2; 1 ], 0);
      (Dfg.Op.Le, [ 2; 2 ], 1);
      (Dfg.Op.Gt, [ 2; 1 ], 1);
      (Dfg.Op.Ge, [ 1; 2 ], 0);
      (Dfg.Op.Eq, [ 5; 5 ], 1);
      (Dfg.Op.Ne, [ 5; 5 ], 0);
      (Dfg.Op.Shl, [ 3; 2 ], 12);
      (Dfg.Op.Shr, [ -8; 1 ], -4);
      (Dfg.Op.Shl, [ 3; 100 ], 0);
    ]
  in
  List.iter
    (fun (k, args, expected) ->
      Alcotest.(check int)
        (Printf.sprintf "%s %s" (Dfg.Op.to_string k)
           (String.concat "," (List.map string_of_int args)))
        expected (Dfg.Op.eval k args))
    cases

let eval_unary () =
  Alcotest.(check int) "not" (-1) (Dfg.Op.eval Dfg.Op.Not [ 0 ]);
  Alcotest.(check int) "neg" (-7) (Dfg.Op.eval Dfg.Op.Neg [ 7 ]);
  Alcotest.(check int) "mov" 42 (Dfg.Op.eval Dfg.Op.Mov [ 42 ])

let eval_bad_arity () =
  Alcotest.check_raises "binary op with one arg"
    (Invalid_argument "Op.eval: add expects 2 operands, got 1") (fun () ->
      ignore (Dfg.Op.eval Dfg.Op.Add [ 1 ]));
  Alcotest.check_raises "unary op with two args"
    (Invalid_argument "Op.eval: neg expects 1 operand, got 2") (fun () ->
      ignore (Dfg.Op.eval Dfg.Op.Neg [ 1; 2 ]))

let fu_class_distinct () =
  (* Single-function classes: each kind has its own class symbol. *)
  let classes = List.map Dfg.Op.fu_class Dfg.Op.all in
  Alcotest.(check int)
    "classes distinct"
    (List.length Dfg.Op.all)
    (List.length (List.sort_uniq String.compare classes))

let commutative_eval_symmetric =
  Helpers.qcheck "commutative kinds evaluate symmetrically"
    QCheck2.Gen.(pair int int)
    (fun (a, b) ->
      List.for_all
        (fun k ->
          (not (Dfg.Op.is_commutative k))
          || Dfg.Op.arity k <> 2
          || Dfg.Op.eval k [ a; b ] = Dfg.Op.eval k [ b; a ])
        Dfg.Op.all)

let comparisons_boolean =
  Helpers.qcheck "comparisons return 0/1"
    QCheck2.Gen.(pair int int)
    (fun (a, b) ->
      List.for_all
        (fun k ->
          let v = Dfg.Op.eval k [ a; b ] in
          v = 0 || v = 1)
        [ Dfg.Op.Lt; Dfg.Op.Le; Dfg.Op.Gt; Dfg.Op.Ge; Dfg.Op.Eq; Dfg.Op.Ne ])

let suite =
  [
    test "to_string/of_string roundtrip" roundtrip;
    test "symbols parse back" symbols_parse;
    test "unknown mnemonic rejected" unknown_op;
    test "arities" arities;
    test "commutativity table" commutativity;
    test "eval arithmetic and logic" eval_arithmetic;
    test "eval unary" eval_unary;
    test "eval arity errors" eval_bad_arity;
    test "fu classes are distinct" fu_class_distinct;
    commutative_eval_symmetric;
    comparisons_boolean;
  ]
