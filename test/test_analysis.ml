let test name f = Alcotest.test_case name `Quick f

let codes fs = List.map (fun f -> f.Analysis.Finding.diag.Diag.code) fs
let error_codes fs = codes (Analysis.Finding.errors fs)
let has_error code fs = List.mem code (error_codes fs)
let has_warning code fs = List.mem code (codes (Analysis.Finding.warnings fs))

let check_no_errors what fs =
  Alcotest.(check (list string)) (what ^ ": no error findings") []
    (error_codes fs)

(* --- DFG lint ------------------------------------------------------- *)

let dfg_clean () =
  let fs = Analysis.Dfg_lint.check (Helpers.diamond ()) in
  Alcotest.(check (list string)) "no findings at all" [] (codes fs)

let dfg_dead_input () =
  let g =
    Helpers.graph_exn ~inputs:[ "a"; "b"; "z" ]
      [ Helpers.op "m" Dfg.Op.Mul [ "a"; "b" ] ]
  in
  let fs = Analysis.Dfg_lint.check g in
  Alcotest.(check bool) "dead input warned" true
    (has_warning "lint.dead-input" fs);
  check_no_errors "warnings only" fs;
  Alcotest.(check bool) "z is flagged" true
    (List.mem_assoc "z" (Analysis.Finding.flagged fs))

let dfg_contradictory_guards () =
  let g =
    Helpers.graph_exn ~inputs:[ "a"; "b" ]
      [
        ("c", Dfg.Op.Lt, [ "a"; "b" ], []);
        ("t", Dfg.Op.Add, [ "a"; "b" ], [ ("c", true); ("c", false) ]);
      ]
  in
  let fs = Analysis.Dfg_lint.check g in
  Alcotest.(check bool) "contradiction is an error" true
    (has_error "lint.contradictory-guards" fs)

let dfg_guard_hygiene_warnings () =
  (* Guard produced by arithmetic, and the same (cond, arm) listed twice. *)
  let g =
    Helpers.graph_exn ~inputs:[ "a"; "b" ]
      [
        ("c", Dfg.Op.Add, [ "a"; "b" ], []);
        ("t", Dfg.Op.Sub, [ "a"; "b" ], [ ("c", true); ("c", true) ]);
      ]
  in
  let fs = Analysis.Dfg_lint.check g in
  Alcotest.(check bool) "arithmetic guard warned" true
    (has_warning "lint.guard-arith" fs);
  Alcotest.(check bool) "duplicate guard warned" true
    (has_warning "lint.duplicate-guard" fs);
  check_no_errors "hygiene issues are warnings" fs

let dfg_mutex_misuse () =
  (* u's guard set contains the opposite arm of its producer t, so the two
     look mutually exclusive to the FU-sharing logic, yet t feeds u. *)
  let g =
    Helpers.graph_exn ~inputs:[ "a"; "b" ]
      [
        ("c", Dfg.Op.Lt, [ "a"; "b" ], []);
        ("t", Dfg.Op.Add, [ "a"; "b" ], [ ("c", true) ]);
        ("u", Dfg.Op.Add, [ "t"; "b" ], [ ("c", true); ("c", false) ]);
      ]
  in
  let fs = Analysis.Dfg_lint.check g in
  Alcotest.(check bool) "mutex misuse is an error" true
    (has_error "lint.mutex-misuse" fs)

let dfg_chain_clock () =
  let config =
    {
      Core.Config.default with
      Core.Config.chaining =
        Some { Core.Config.prop_delay = (fun _ -> 20.0); clock = 10.0 };
    }
  in
  let fs = Analysis.Dfg_lint.check ~config (Helpers.diamond ()) in
  Alcotest.(check bool) "unplaceable op is an error" true
    (has_error "lint.chain-clock" fs);
  Alcotest.(check int) "infeasible exit code" 4
    (Analysis.Finding.exit_code fs)

let dfg_loop_budget () =
  let tree =
    { Core.Loops.body = Helpers.chain4 (); budget = 2; children = [] }
  in
  let fs = Analysis.Dfg_lint.loop_tree tree in
  Alcotest.(check bool) "tight loop budget is an error" true
    (has_error "lint.loop-budget" fs)

let dfg_loop_placeholder () =
  let leaf =
    { Core.Loops.body = Helpers.diamond (); budget = 2; children = [] }
  in
  let tree =
    {
      Core.Loops.body = Helpers.chain4 ();
      budget = 10;
      children = [ ("missing", leaf) ];
    }
  in
  let fs = Analysis.Dfg_lint.loop_tree tree in
  Alcotest.(check bool) "missing placeholder is an error" true
    (has_error "lint.loop-placeholder" fs)

(* --- Feasibility bounds --------------------------------------------- *)

let parallel_muls () =
  Helpers.graph_exn ~inputs:[ "a"; "b" ]
    [
      Helpers.op "m1" Dfg.Op.Mul [ "a"; "b" ];
      Helpers.op "m2" Dfg.Op.Mul [ "a"; "b" ];
      Helpers.op "m3" Dfg.Op.Mul [ "a"; "b" ];
    ]

let feasibility_analyze () =
  let a = Analysis.Feasibility.analyze ~cs:2 Core.Config.default
      (Helpers.diamond ())
  in
  Alcotest.(check int) "critical path" 2 a.Analysis.Feasibility.min_steps;
  Alcotest.(check (list (pair string int))) "cells per class"
    [ ("*", 2); ("+", 1) ]
    (List.sort compare a.Analysis.Feasibility.class_cells);
  Alcotest.(check (list (pair string int))) "lower bounds"
    [ ("*", 1); ("+", 1) ]
    (List.sort compare a.Analysis.Feasibility.fu_lower_bounds)

let feasibility_clean () =
  check_no_errors "diamond fits cs=2"
    (Analysis.Feasibility.check ~cs:2 Core.Config.default (Helpers.diamond ()))

let feasibility_budget () =
  let fs =
    Analysis.Feasibility.check ~cs:2 Core.Config.default (Helpers.chain4 ())
  in
  Alcotest.(check bool) "budget below critical path" true
    (has_error "lint.infeasible-budget" fs);
  Alcotest.(check int) "exit 4" 4 (Analysis.Finding.exit_code fs)

let feasibility_units () =
  (* Three concurrent multiplications in a 1-step horizon need 3 units. *)
  let g = parallel_muls () in
  let tight =
    Analysis.Feasibility.check ~cs:1 ~limits:[ ("*", 2) ] Core.Config.default g
  in
  Alcotest.(check bool) "cap 2 below bound 3" true
    (has_error "lint.infeasible-units" tight);
  Alcotest.(check int) "exit 4" 4 (Analysis.Finding.exit_code tight);
  check_no_errors "cap 3 is enough"
    (Analysis.Feasibility.check ~cs:1 ~limits:[ ("*", 3) ] Core.Config.default
       g);
  Alcotest.(check bool) "non-positive cap rejected" true
    (has_error "lint.infeasible-units"
       (Analysis.Feasibility.check ~limits:[ ("*", 0) ] Core.Config.default g))

let feasibility_empty () =
  let g = Helpers.graph_exn ~inputs:[ "a" ] [] in
  let fs = Analysis.Feasibility.check ~cs:4 Core.Config.default g in
  Alcotest.(check bool) "empty graph rejected" true
    (has_error "lint.empty-graph" fs);
  Alcotest.(check int) "input-category exit" 3 (Analysis.Finding.exit_code fs)

(* --- Schedule / lifetime / trace audits ------------------------------ *)

let sched_clean () =
  let o = Helpers.mfs_time (Helpers.diamond ()) 2 in
  check_no_errors "schedule audit"
    (Analysis.Sched_lint.schedule o.Core.Mfs.schedule);
  check_no_errors "lifetime audit"
    (Analysis.Sched_lint.lifetimes o.Core.Mfs.schedule);
  check_no_errors "trace audit" (Analysis.Sched_lint.trace o.Core.Mfs.trace)

let inject what = function
  | Some x -> x
  | None -> Alcotest.failf "%s: fault not applicable" what

let sched_catches_corrupt_start () =
  let o = Helpers.mfs_time (Helpers.chain4 ()) 4 in
  let s = inject "corrupt-start" (Harness.Fault.corrupt_start o.Core.Mfs.schedule) in
  Alcotest.(check bool) "horizon breach found" true
    (has_error "lint.sched-horizon" (Analysis.Sched_lint.schedule s));
  Alcotest.(check bool) "lifetime breach found" true
    (has_error "lint.lifetime-horizon" (Analysis.Sched_lint.lifetimes s))

let sched_catches_corrupt_col () =
  let o = Helpers.mfs_time (Helpers.diamond ()) 2 in
  let s = inject "corrupt-col" (Harness.Fault.corrupt_col o.Core.Mfs.schedule) in
  let fs = Analysis.Sched_lint.schedule s in
  Alcotest.(check bool) "FU conflict or range breach found" true
    (has_error "lint.fu-conflict" fs || has_error "lint.sched-col" fs)

let sched_catches_corrupt_trace () =
  let o = Helpers.mfs_time (Helpers.diamond ()) 2 in
  let tr = inject "corrupt-trace" (Harness.Fault.corrupt_trace o.Core.Mfs.trace) in
  Alcotest.(check bool) "non-monotone energy found" true
    (has_error "lint.trace-monotone" (Analysis.Sched_lint.trace tr))

let lifetime_clash_and_overallocation () =
  let o = Helpers.mfs_time (Helpers.diamond ()) 2 in
  let s = o.Core.Mfs.schedule in
  (* m1 and m2 are both latched at boundary 1 and read in step 2, so a
     binding putting them in one register is a clash... *)
  let shared = { Rtl.Left_edge.reg_of = [ ("m1", 0); ("m2", 0) ]; count = 1 } in
  Alcotest.(check bool) "shared register clash found" true
    (has_error "lint.reg-lifetime-clash"
       (Analysis.Sched_lint.lifetimes ~regs:shared s));
  (* ... and a binding claiming far more registers than the max-overlap
     bound draws the over-allocation warning. *)
  let waste = { Rtl.Left_edge.reg_of = [ ("m1", 0); ("m2", 1) ]; count = 99 } in
  let fs = Analysis.Sched_lint.lifetimes ~regs:waste s in
  Alcotest.(check bool) "over-allocation warned" true
    (has_warning "lint.reg-overallocated" fs);
  check_no_errors "over-allocation is only a warning" fs

let mfsa_binding_audits_clean () =
  let g = Workloads.Classic.diffeq () in
  let lib = Celllib.Ncr.for_graph g in
  let config = Core.Config.of_library lib in
  let cs = (Analysis.Feasibility.analyze config g).Analysis.Feasibility.min_steps in
  let o = Helpers.check_okd "MFSA" (Core.Mfsa.run ~config ~library:lib ~cs g) in
  let s = o.Core.Mfsa.schedule in
  let regs = o.Core.Mfsa.datapath.Rtl.Datapath.regs in
  check_no_errors "left-edge binding audit"
    (Analysis.Sched_lint.lifetimes ~regs s);
  Alcotest.(check int) "left-edge meets the lower bound"
    (Analysis.Sched_lint.reg_lower_bound s) regs.Rtl.Left_edge.count

(* --- RTL dataflow verification --------------------------------------- *)

let rtl_pipeline g =
  let lib = Celllib.Ncr.for_graph g in
  let config = Core.Config.of_library lib in
  let cs = (Analysis.Feasibility.analyze config g).Analysis.Feasibility.min_steps in
  let o = Helpers.check_okd "MFSA" (Core.Mfsa.run ~config ~library:lib ~cs g) in
  let dp = o.Core.Mfsa.datapath in
  let delay i =
    Core.Config.delay config (Dfg.Graph.node g i).Dfg.Graph.kind
  in
  let ctrl = Helpers.check_ok "controller" (Rtl.Controller.generate dp ~delay) in
  (dp, ctrl, delay)

let rtl_clean () =
  let dp, ctrl, delay = rtl_pipeline (Workloads.Classic.diffeq ()) in
  Alcotest.(check (list string)) "no findings at all" []
    (codes (Analysis.Rtl_lint.check dp ctrl ~delay))

let rtl_catches_skew_delay () =
  let dp, ctrl, delay = rtl_pipeline (Workloads.Classic.diffeq ()) in
  let skewed = inject "skew-delay" (Harness.Fault.skew_delay dp ~delay) in
  let fs = Analysis.Rtl_lint.check dp ctrl ~delay:skewed in
  Alcotest.(check bool) "latch edge disagreement found" true
    (has_error "lint.latch-mismatch" fs)

(* --- Every injection mode is caught by a static pass ------------------ *)

let budgets = { Harness.Driver.stage_seconds = 30.0; sim_runs = 2 }

let driver_faults_statically_detected () =
  let g = Workloads.Classic.diffeq () in
  let is_lint d =
    String.length d.Diag.code >= 5 && String.sub d.Diag.code 0 5 = "lint."
  in
  List.iter
    (fun fault ->
      let name = Harness.Fault.to_string fault in
      let o = Harness.Driver.run ~fault ~budgets g in
      Alcotest.(check bool) (name ^ ": fault applied") true
        o.Harness.Driver.fault_applied;
      Alcotest.(check bool) (name ^ ": caught by a lint.* pass") true
        (List.exists is_lint o.Harness.Driver.violations))
    Harness.Fault.all

(* --- No false positives on random DAGs -------------------------------- *)

let lint_clean_prop g =
  let o = Harness.Driver.run ~budgets g in
  (match o.Harness.Driver.stopped with
  | Some d -> not (Diag.is_bug d)
  | None -> true)
  && o.Harness.Driver.violations = []

let suite =
  [
    test "dfg: diamond is clean" dfg_clean;
    test "dfg: dead input warned" dfg_dead_input;
    test "dfg: contradictory guards rejected" dfg_contradictory_guards;
    test "dfg: guard hygiene warnings" dfg_guard_hygiene_warnings;
    test "dfg: mutex misuse on a data path" dfg_mutex_misuse;
    test "dfg: op slower than the clock" dfg_chain_clock;
    test "dfg: loop budget too tight" dfg_loop_budget;
    test "dfg: loop placeholder missing" dfg_loop_placeholder;
    test "feasibility: analyze diamond" feasibility_analyze;
    test "feasibility: diamond fits" feasibility_clean;
    test "feasibility: budget below critical path" feasibility_budget;
    test "feasibility: unit caps below the bound" feasibility_units;
    test "feasibility: empty graph" feasibility_empty;
    test "sched: clean MFS output" sched_clean;
    test "sched: corrupt-start caught" sched_catches_corrupt_start;
    test "sched: corrupt-col caught" sched_catches_corrupt_col;
    test "sched: corrupt-trace caught" sched_catches_corrupt_trace;
    test "sched: register clash and over-allocation" lifetime_clash_and_overallocation;
    test "sched: MFSA left-edge binding is audit-clean" mfsa_binding_audits_clean;
    test "rtl: clean diffeq netlist" rtl_clean;
    test "rtl: skew-delay caught" rtl_catches_skew_delay;
    test "driver: every fault mode caught statically" driver_faults_statically_detected;
    Helpers.qcheck ~count:200 "lint: no false positives on random DAGs"
      (Helpers.dag_gen ()) lint_clean_prop;
    Helpers.qcheck ~count:40 "lint: no false positives on guarded DAGs"
      (Helpers.guarded_dag_gen ()) lint_clean_prop;
  ]
