let test name f = Alcotest.test_case name `Quick f

let exit_codes () =
  Alcotest.(check int) "usage" 2
    (Diag.exit_code (Diag.usage ~code:"x" "m"));
  Alcotest.(check int) "input" 3 (Diag.exit_code (Diag.input ~code:"x" "m"));
  Alcotest.(check int) "infeasible" 4 (Diag.exit_code (Diag.infeasible "m"));
  Alcotest.(check int) "internal" 5 (Diag.exit_code (Diag.internal "m"))

let is_bug_only_internal () =
  Alcotest.(check bool) "internal is a bug" true
    (Diag.is_bug (Diag.internal "m"));
  List.iter
    (fun d ->
      Alcotest.(check bool) ("not a bug: " ^ d.Diag.code) false
        (Diag.is_bug d))
    [ Diag.usage ~code:"u" "m"; Diag.input ~code:"i" "m";
      Diag.infeasible "m" ]

let spans () =
  let s = Diag.point ~line:3 ~col:7 in
  Alcotest.(check int) "point end col" 8 s.Diag.end_col;
  let w = Diag.span_of_word ~line:2 ~col:5 "frobnicate" in
  Alcotest.(check int) "word end col" 15 w.Diag.end_col;
  Alcotest.(check int) "word same line" 2 w.Diag.end_line

let rendering () =
  let d =
    Diag.input ~span:(Diag.span_of_word ~line:3 ~col:5 "fma")
      ~file:"foo.dfg" ~code:"parse.unknown-op" "unknown operation \"fma\""
  in
  let s = Diag.to_string d in
  List.iter
    (fun sub ->
      Alcotest.(check bool) ("renders " ^ sub) true
        (Helpers.contains ~sub s))
    [ "parse.unknown-op"; "foo.dfg:3:5"; "unknown operation" ]

let json () =
  let d =
    Diag.input ~span:(Diag.point ~line:2 ~col:1) ~file:"a.dfg"
      ~code:"parse.bad-line" "quote \"me\" and \\ backslash"
  in
  let j = Diag.to_json d in
  List.iter
    (fun sub ->
      Alcotest.(check bool) ("json has " ^ sub) true
        (Helpers.contains ~sub j))
    [ "\"code\":\"parse.bad-line\""; "\"category\":\"input\"";
      "\"line\":2"; "\"file\":\"a.dfg\"";
      "\\\"me\\\""; "\\\\ backslash" ];
  let arr = Diag.list_to_json [ d; Diag.internal "boom" ] in
  Alcotest.(check bool) "array brackets" true
    (String.length arr > 2 && arr.[0] = '[' && arr.[String.length arr - 1] = ']')

let with_file_keeps_existing () =
  let d = Diag.input ~file:"orig.dfg" ~code:"x" "m" in
  Alcotest.(check (option string)) "kept" (Some "orig.dfg")
    (Diag.with_file "other.dfg" d).Diag.file;
  let d' = Diag.input ~code:"x" "m" in
  Alcotest.(check (option string)) "attached" (Some "other.dfg")
    (Diag.with_file "other.dfg" d').Diag.file

let of_msg_wraps () =
  let d = Diag.of_msg Diag.Infeasible ~code:"legacy" "old text" in
  Alcotest.(check string) "message" "old text" (Diag.message d);
  Alcotest.(check int) "category" 4 (Diag.exit_code d);
  Alcotest.(check bool) "no span" true (d.Diag.span = None)

(* No [failwith], [invalid_arg]-free error paths or [exit] may be reachable
   from library code: every failure must surface as a [Diag.t] (or, for
   programmer errors on static data, [Invalid_argument]). The lint reads
   the library sources and rejects the banned calls outside comments. *)
let lib_sources () =
  let rec walk acc dir =
    Array.fold_left
      (fun acc entry ->
        let path = Filename.concat dir entry in
        if Sys.is_directory path then walk acc path
        else if Filename.check_suffix entry ".ml" then path :: acc
        else acc)
      acc (Sys.readdir dir)
  in
  walk [] "../lib"

let strip_comments_and_strings s =
  (* Good enough for a lint: blank out (* ... *) comments (nested) and
     string literals so banned words inside them don't trip the check. *)
  let b = Bytes.of_string s in
  let n = String.length s in
  let i = ref 0 and depth = ref 0 and in_str = ref false in
  while !i < n do
    let c = s.[!i] in
    if !in_str then begin
      if c = '\\' && !i + 1 < n then begin
        Bytes.set b !i ' ';
        Bytes.set b (!i + 1) ' ';
        incr i
      end
      else begin
        if c = '"' then in_str := false;
        if c <> '\n' then Bytes.set b !i ' '
      end
    end
    else if !depth > 0 then begin
      if c = '(' && !i + 1 < n && s.[!i + 1] = '*' then incr depth
      else if c = '*' && !i + 1 < n && s.[!i + 1] = ')' then begin
        decr depth;
        Bytes.set b !i ' ';
        incr i;
        Bytes.set b !i ' '
      end;
      if !i < n && s.[!i] <> '\n' then Bytes.set b !i ' '
    end
    else if c = '(' && !i + 1 < n && s.[!i + 1] = '*' then begin
      incr depth;
      Bytes.set b !i ' '
    end
    else if c = '"' then begin
      in_str := true;
      Bytes.set b !i ' '
    end;
    incr i
  done;
  Bytes.to_string b

let contains_word ~word line =
  let wl = String.length word and n = String.length line in
  let ok_boundary j =
    (j = 0
    || not
         (match line.[j - 1] with
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
         | _ -> false))
    &&
    (j + wl >= n
    || not
         (match line.[j + wl] with
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
         | _ -> false))
  in
  let rec go j =
    if j + wl > n then false
    else if String.sub line j wl = word && ok_boundary j then true
    else go (j + 1)
  in
  go 0

let no_failwith_in_lib () =
  let offenders = ref [] in
  List.iter
    (fun path ->
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let src = really_input_string ic len in
      close_in ic;
      let cleaned = strip_comments_and_strings src in
      List.iteri
        (fun lineno line ->
          if contains_word ~word:"failwith" line
             || contains_word ~word:"exit" line then
            offenders := Printf.sprintf "%s:%d" path (lineno + 1) :: !offenders)
        (String.split_on_char '\n' cleaned))
    (lib_sources ());
  Alcotest.(check (list string)) "no failwith/exit in lib sources" []
    !offenders

let suite =
  [
    test "category to exit code" exit_codes;
    test "only internal diagnostics are bugs" is_bug_only_internal;
    test "span constructors" spans;
    test "one-line rendering" rendering;
    test "JSON rendering and escaping" json;
    test "with_file keeps an existing file" with_file_keeps_existing;
    test "legacy message wrapping" of_msg_wraps;
    test "lint: no failwith/exit reachable from lib/" no_failwith_in_lib;
  ]
