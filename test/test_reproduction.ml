(* Regression locks on the headline reproduction results: if an algorithm
   change shifts a Table-1/Table-2 shape, these fail before EXPERIMENTS.md
   silently goes stale. *)

let test name f = Alcotest.test_case name `Quick f

let two_cycle_cfg =
  { Core.Config.default with
    Core.Config.delays = (function Dfg.Op.Mul | Dfg.Op.Div -> 2 | _ -> 1) }

let pipelined_cfg =
  { two_cycle_cfg with
    Core.Config.pipelined = (function Dfg.Op.Mul | Dfg.Op.Div -> true | _ -> false) }

let chain_cfg =
  { Core.Config.default with
    Core.Config.chaining =
      Some { Core.Config.prop_delay = Celllib.Ncr.default.Celllib.Library.prop_delay;
             clock = 100. } }

let counts ?config g cs =
  let o = Helpers.mfs_time ?config g cs in
  Core.Schedule.fu_counts o.Core.Mfs.schedule

let check_counts name expected actual =
  List.iter
    (fun (c, k) ->
      Alcotest.(check int)
        (Printf.sprintf "%s: %s units" name c)
        k
        (Option.value ~default:0 (List.assoc_opt c actual)))
    expected

let table1_ex1 () =
  (* Paper row (legible): T=4 -> *,++,-,=,&,| ; T=5 -> one of each. *)
  check_counts "tseng T=4"
    [ ("+", 2); ("*", 1); ("-", 1); ("&", 1); ("|", 1); ("=", 1) ]
    (counts (Workloads.Classic.tseng ()) 4);
  check_counts "tseng T=5"
    [ ("+", 1); ("*", 1); ("-", 1); ("&", 1); ("|", 1); ("=", 1) ]
    (counts (Workloads.Classic.tseng ()) 5)

let table1_ex2 () =
  check_counts "chained T=3" [ ("+", 2); ("-", 1) ]
    (counts ~config:chain_cfg (Workloads.Classic.chained_sum ()) 3);
  check_counts "chained T=4" [ ("+", 1); ("-", 1) ]
    (counts ~config:chain_cfg (Workloads.Classic.chained_sum ()) 4)

let table1_ex4 () =
  check_counts "fir16 T=5" [ ("*", 16); ("+", 8) ]
    (counts (Workloads.Classic.fir16 ()) 5);
  check_counts "fir16 T=9" [ ("*", 4); ("+", 2) ]
    (counts (Workloads.Classic.fir16 ()) 9)

let table1_ex6 () =
  (* The EWF operating point: 2 mults at the T=17 floor, 1 from T=18 on. *)
  check_counts "ewf T=17 (2-cycle)" [ ("*", 2); ("+", 2) ]
    (counts ~config:two_cycle_cfg (Workloads.Classic.ewf ()) 17);
  check_counts "ewf T=19 (2-cycle)" [ ("*", 1); ("+", 2) ]
    (counts ~config:two_cycle_cfg (Workloads.Classic.ewf ()) 19);
  check_counts "ewf T=17 (pipelined)" [ ("*", 1); ("+", 2) ]
    (counts ~config:pipelined_cfg (Workloads.Classic.ewf ()) 17)

let table2_style_band () =
  (* Style-2 aggregate overhead stays in a sane band around the paper's
     2-11% (per-example -4%..+15% measured; see EXPERIMENTS.md). *)
  List.iter
    (fun (name, g) ->
      let cs = Dfg.Bounds.critical_path g + 1 in
      let lib = Celllib.Ncr.for_graph g in
      let run style = Helpers.check_okd "mfsa" (Core.Mfsa.run ~style ~library:lib ~cs g) in
      let c1 = (run Core.Mfsa.Unrestricted).Core.Mfsa.cost.Rtl.Cost.total in
      let c2 = (run Core.Mfsa.No_self_loop).Core.Mfsa.cost.Rtl.Cost.total in
      let overhead = (c2 -. c1) /. c1 in
      Alcotest.(check bool)
        (Printf.sprintf "%s overhead %.1f%% in [-10%%, +20%%]" name (100. *. overhead))
        true
        (overhead >= -0.10 && overhead <= 0.20))
    (Workloads.Classic.all ())

let speed_ordering () =
  (* The §1 claim as an executable assertion: MFS beats FDS and annealing
     by a wide margin on EWF. Generous factors keep this robust on slow
     machines while still catching order-of-magnitude regressions. *)
  let g = Workloads.Classic.ewf () in
  let time f =
    let t0 = Sys.time () in
    f ();
    Sys.time () -. t0
  in
  let t_mfs =
    time (fun () ->
        for _ = 1 to 5 do
          ignore (Helpers.check_okd "mfs" (Core.Mfs.schedule g (Core.Mfs.Time { cs = 18 })))
        done)
  in
  let t_fds =
    time (fun () -> ignore (Helpers.check_ok "fds" (Baselines.Fds.run g ~cs:18)))
  in
  (* 5 MFS runs vs 1 FDS run: MFS must still win comfortably. *)
  Alcotest.(check bool)
    (Printf.sprintf "5x MFS (%.1fms) faster than 1x FDS (%.1fms)"
       (t_mfs *. 1e3) (t_fds *. 1e3))
    true (t_mfs < t_fds)

let mfsa_cost_calibration () =
  (* The NCR-like calibration: diffeq at T=4 lands in the paper's cost
     magnitude (tens of thousands of um2), not off by an order. *)
  let g = Workloads.Classic.diffeq () in
  let lib = Celllib.Ncr.for_graph g in
  let o = Helpers.check_okd "mfsa" (Core.Mfsa.run ~library:lib ~cs:4 g) in
  let total = o.Core.Mfsa.cost.Rtl.Cost.total in
  Alcotest.(check bool)
    (Printf.sprintf "diffeq cost %.0f in [20k, 90k]" total)
    true
    (total >= 20_000. && total <= 90_000.);
  Alcotest.(check int) "diffeq registers (paper: 8)" 8
    o.Core.Mfsa.cost.Rtl.Cost.n_regs

let suite =
  [
    test "Table 1 ex1 row shapes" table1_ex1;
    test "Table 1 ex2 chaining rows" table1_ex2;
    test "Table 1 ex4 FIR sweep" table1_ex4;
    test "Table 1 ex6 EWF operating points" table1_ex6;
    test "Table 2 style-overhead band" table2_style_band;
    test "runtime ordering (paper section 1)" speed_ordering;
    test "MFSA cost calibration" mfsa_cost_calibration;
  ]
