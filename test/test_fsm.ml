let test name f = Alcotest.test_case name `Quick f

let encodings () =
  Alcotest.(check int) "binary bits for 4" 2 (Rtl.Fsm.state_bits Rtl.Fsm.Binary ~steps:4);
  Alcotest.(check int) "binary bits for 5" 3 (Rtl.Fsm.state_bits Rtl.Fsm.Binary ~steps:5);
  Alcotest.(check int) "one-hot bits" 5 (Rtl.Fsm.state_bits Rtl.Fsm.One_hot ~steps:5);
  Alcotest.(check string) "binary s1" "00" (Rtl.Fsm.encode Rtl.Fsm.Binary ~steps:4 1);
  Alcotest.(check string) "binary s4" "11" (Rtl.Fsm.encode Rtl.Fsm.Binary ~steps:4 4);
  Alcotest.(check string) "one-hot s2" "0010" (Rtl.Fsm.encode Rtl.Fsm.One_hot ~steps:4 2);
  Alcotest.(check string) "gray s3" "11" (Rtl.Fsm.encode Rtl.Fsm.Gray ~steps:4 3);
  Alcotest.check_raises "state range"
    (Invalid_argument "Fsm.encode: state 5 outside 1..4") (fun () ->
      ignore (Rtl.Fsm.encode Rtl.Fsm.Binary ~steps:4 5))

let gray_adjacent_differ_by_one_bit () =
  let steps = 8 in
  let hamming a b =
    let d = ref 0 in
    String.iteri (fun i c -> if c <> b.[i] then incr d) a;
    !d
  in
  for s = 1 to steps - 1 do
    Alcotest.(check int)
      (Printf.sprintf "gray %d->%d" s (s + 1))
      1
      (hamming
         (Rtl.Fsm.encode Rtl.Fsm.Gray ~steps s)
         (Rtl.Fsm.encode Rtl.Fsm.Gray ~steps (s + 1)))
  done

let rom_of_diffeq () =
  let g = Workloads.Classic.diffeq () in
  let lib = Celllib.Ncr.for_graph g in
  let o = Helpers.check_okd "mfsa" (Core.Mfsa.run ~library:lib ~cs:4 g) in
  let ctrl =
    Helpers.check_ok "ctrl"
      (Rtl.Controller.generate o.Core.Mfsa.datapath ~delay:(fun _ -> 1))
  in
  let rows = Rtl.Fsm.rom ctrl in
  Alcotest.(check int) "one row per step" 4 (List.length rows);
  (* Every op appears in exactly one select across the ROM. *)
  let selects = List.concat_map (fun r -> r.Rtl.Fsm.rom_selects) rows in
  Alcotest.(check int) "11 micro-orders" 11 (List.length selects);
  (* Each step runs at most one op per ALU. *)
  List.iter
    (fun r ->
      let alus = List.map fst r.Rtl.Fsm.rom_selects in
      Alcotest.(check int)
        (Printf.sprintf "state %d: distinct ALUs" r.Rtl.Fsm.rom_state)
        (List.length alus)
        (List.length (List.sort_uniq compare alus)))
    rows;
  let txt = Rtl.Fsm.render ~encoding:Rtl.Fsm.One_hot ctrl in
  Alcotest.(check bool) "render mentions one-hot" true
    (Helpers.contains ~sub:"one-hot" txt);
  Alcotest.(check bool) "render has load column" true
    (Helpers.contains ~sub:"load:[" txt)

let suite =
  [
    test "state encodings" encodings;
    test "gray code adjacency" gray_adjacent_differ_by_one_bit;
    test "microcode ROM of diffeq" rom_of_diffeq;
  ]
