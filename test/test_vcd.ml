let test name f = Alcotest.test_case name `Quick f

let run_diffeq () =
  let g = Workloads.Classic.diffeq () in
  let lib = Celllib.Ncr.for_graph g in
  let o = Helpers.check_okd "mfsa" (Core.Mfsa.run ~library:lib ~cs:4 g) in
  let ctrl =
    Helpers.check_ok "controller"
      (Rtl.Controller.generate o.Core.Mfsa.datapath ~delay:(fun _ -> 1))
  in
  let env =
    [ ("x", 2); ("y", 5); ("u", 3); ("dx", 1); ("a", 10); ("three", 3) ]
  in
  let r =
    Helpers.check_ok "machine" (Sim.Machine.run o.Core.Mfsa.datapath ctrl ~env)
  in
  (o, r)

let trace_structure () =
  let _, r = run_diffeq () in
  Alcotest.(check int) "one snapshot per step" 4 (List.length r.Sim.Machine.trace);
  List.iteri
    (fun i snap ->
      Alcotest.(check int) "steps in order" (i + 1) snap.Sim.Machine.snap_step)
    r.Sim.Machine.trace;
  (* The last snapshot equals the final register file. *)
  let last = List.nth r.Sim.Machine.trace 3 in
  Alcotest.(check bool) "final snapshot matches" true
    (last.Sim.Machine.snap_regs = r.Sim.Machine.final_regs)

let trace_progress () =
  let _, r = run_diffeq () in
  let defined snap =
    Array.fold_left
      (fun acc v -> if v = None then acc else acc + 1)
      0 snap.Sim.Machine.snap_regs
  in
  let counts = List.map defined r.Sim.Machine.trace in
  (* Registers fill up monotonically on this design (no undefined gaps). *)
  let rec non_decreasing = function
    | a :: (b :: _ as rest) -> a <= b && non_decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "register file fills up" true (non_decreasing counts)

let vcd_structure () =
  let o, r = run_diffeq () in
  let src = Sim.Vcd.emit ~design_name:"diffeq" o.Core.Mfsa.datapath r in
  List.iter
    (fun sub ->
      Alcotest.(check bool) (sub ^ " present") true (Helpers.contains ~sub src))
    [ "$timescale"; "$scope module diffeq"; "$enddefinitions"; "$dumpvars";
      "#0"; "#1"; "#4"; "reg_0"; "alu_out_0" ];
  (* One $var per register plus state plus one per ALU. *)
  Alcotest.(check int) "var count"
    (1 + o.Core.Mfsa.cost.Rtl.Cost.n_regs + o.Core.Mfsa.cost.Rtl.Cost.n_alus)
    (Helpers.count_occurrences ~sub:"$var" src)

let vcd_values_change () =
  let o, r = run_diffeq () in
  let src = Sim.Vcd.emit o.Core.Mfsa.datapath r in
  (* Binary value lines appear after timestamps; at least one real value. *)
  Alcotest.(check bool) "binary values present" true
    (Helpers.contains ~sub:"b000000000000000000000000000" src)

let vcd_file_roundtrip () =
  let o, r = run_diffeq () in
  let path = Filename.temp_file "mfs" ".vcd" in
  (match Sim.Vcd.write_file ~path o.Core.Mfsa.datapath r with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let content = In_channel.with_open_text path In_channel.input_all in
  Alcotest.(check bool) "file written" true
    (Helpers.contains ~sub:"$enddefinitions" content);
  Sys.remove path

let suite =
  [
    test "trace structure" trace_structure;
    test "register file fills monotonically" trace_progress;
    test "VCD structure" vcd_structure;
    test "VCD carries values" vcd_values_change;
    test "VCD file writing" vcd_file_roundtrip;
  ]
