let test name f = Alcotest.test_case name `Quick f

let unit_delay _ = 1
let alu kinds = Celllib.Library.make_alu kinds

let eval_diffeq () =
  let g = Workloads.Classic.diffeq () in
  let env =
    [ ("x", 2); ("y", 5); ("u", 3); ("dx", 1); ("a", 10); ("three", 3) ]
  in
  let v = Helpers.check_ok "eval" (Sim.Eval.run g env) in
  (* u1 = u - 3*x*u*dx - 3*y*dx = 3 - 18 - 15 = -30; x1 = 3; y1 = 8. *)
  Alcotest.(check (option int)) "s2" (Some (-30)) (Sim.Eval.value v "s2");
  Alcotest.(check (option int)) "a1" (Some 3) (Sim.Eval.value v "a1");
  Alcotest.(check (option int)) "a2" (Some 8) (Sim.Eval.value v "a2");
  Alcotest.(check (option int)) "c1 true" (Some 1) (Sim.Eval.value v "c1")

let eval_missing_input () =
  let g = Workloads.Classic.diffeq () in
  let msg = Helpers.check_err "missing" (Sim.Eval.run g [ ("x", 1) ]) in
  Alcotest.(check bool) "names a missing input" true
    (Helpers.contains ~sub:"missing" msg)

let active_guards () =
  let g = Workloads.Classic.cond_example () in
  let env = [ ("a", 1); ("b", 5); ("c", 2) ] in
  let v = Helpers.check_ok "eval" (Sim.Eval.run g env) in
  let id n = (Option.get (Dfg.Graph.find g n)).Dfg.Graph.id in
  (* a < b, so c1 = 1: the true arm is active. *)
  Alcotest.(check bool) "t1 active" true (Sim.Eval.active g ~values:v (id "t1"));
  Alcotest.(check bool) "t2 inactive" false (Sim.Eval.active g ~values:v (id "t2"));
  Alcotest.(check bool) "unguarded active" true
    (Sim.Eval.active g ~values:v (id "c1"))

let machine_runs_diamond () =
  let g = Helpers.diamond () in
  let dp =
    Helpers.check_ok "elaborate"
      (Rtl.Datapath.elaborate g ~start:[| 1; 1; 2 |] ~delay:unit_delay ~cs:2
         ~assignments:
           [ (alu [ Dfg.Op.Mul ], [ 0 ]); (alu [ Dfg.Op.Mul ], [ 1 ]);
             (alu [ Dfg.Op.Add ], [ 2 ]) ])
  in
  let ctrl =
    Helpers.check_ok "controller" (Rtl.Controller.generate dp ~delay:unit_delay)
  in
  let env = [ ("a", 2); ("b", 3); ("c", 4); ("d", 5) ] in
  let r = Helpers.check_ok "machine" (Sim.Machine.run dp ctrl ~env) in
  Alcotest.(check (option int)) "s = 2*3 + 4*5" (Some 26)
    (List.assoc_opt "s" r.Sim.Machine.values)

let machine_skips_inactive () =
  let g = Workloads.Classic.cond_example () in
  let lib = Celllib.Ncr.for_graph g in
  let o =
    Helpers.check_okd "mfsa"
      (Core.Mfsa.run ~library:lib ~cs:(Dfg.Bounds.critical_path g) g)
  in
  let ctrl =
    Helpers.check_ok "controller"
      (Rtl.Controller.generate o.Core.Mfsa.datapath ~delay:unit_delay)
  in
  let env = [ ("a", 9); ("b", 5); ("c", 2) ] in
  (* a >= b: c1 = 0, the false arm runs. *)
  let r =
    Helpers.check_ok "machine" (Sim.Machine.run o.Core.Mfsa.datapath ctrl ~env)
  in
  Alcotest.(check (option int)) "t2 executed" (Some 11)
    (List.assoc_opt "t2" r.Sim.Machine.values);
  Alcotest.(check (option int)) "t1 skipped" None
    (List.assoc_opt "t1" r.Sim.Machine.values)

let machine_missing_input () =
  let g = Helpers.diamond () in
  let dp =
    Helpers.check_ok "elaborate"
      (Rtl.Datapath.elaborate g ~start:[| 1; 1; 2 |] ~delay:unit_delay ~cs:2
         ~assignments:
           [ (alu [ Dfg.Op.Mul ], [ 0 ]); (alu [ Dfg.Op.Mul ], [ 1 ]);
             (alu [ Dfg.Op.Add ], [ 2 ]) ])
  in
  let ctrl =
    Helpers.check_ok "controller" (Rtl.Controller.generate dp ~delay:unit_delay)
  in
  ignore
    (Helpers.check_err "missing input"
       (Sim.Machine.run dp ctrl ~env:[ ("a", 1); ("b", 2); ("c", 3) ]))

let equiv_detects_broken_controller () =
  let g = Helpers.diamond () in
  let dp =
    Helpers.check_ok "elaborate"
      (Rtl.Datapath.elaborate g ~start:[| 1; 1; 2 |] ~delay:unit_delay ~cs:2
         ~assignments:
           [ (alu [ Dfg.Op.Mul ], [ 0 ]); (alu [ Dfg.Op.Mul ], [ 1 ]);
             (alu [ Dfg.Op.Add ], [ 2 ]) ])
  in
  let ctrl =
    Helpers.check_ok "controller" (Rtl.Controller.generate dp ~delay:unit_delay)
  in
  (* Corrupt the add's operand sources: both read the same multiplier. *)
  let broken =
    {
      ctrl with
      Rtl.Controller.micros =
        List.map
          (fun m ->
            if m.Rtl.Controller.m_node = 2 then
              {
                m with
                Rtl.Controller.m_sources =
                  [ List.hd m.Rtl.Controller.m_sources;
                    List.hd m.Rtl.Controller.m_sources ];
              }
            else m)
          ctrl.Rtl.Controller.micros;
    }
  in
  match Sim.Equiv.check dp broken ~env:[ ("a", 2); ("b", 3); ("c", 4); ("d", 5) ] with
  | Ok () -> Alcotest.fail "corruption not detected"
  | Error d ->
      Alcotest.(check bool) "mismatch reported" true
        (Helpers.contains ~sub:"mismatch" (Diag.message d))

let equiv_random_on_facet () =
  let g = Workloads.Classic.facet () in
  let lib = Celllib.Ncr.for_graph g in
  let o =
    Helpers.check_okd "mfsa"
      (Core.Mfsa.run ~library:lib ~cs:(Dfg.Bounds.critical_path g + 1) g)
  in
  let ctrl =
    Helpers.check_ok "controller"
      (Rtl.Controller.generate o.Core.Mfsa.datapath ~delay:unit_delay)
  in
  match Sim.Equiv.check_random ~runs:30 o.Core.Mfsa.datapath ctrl with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Diag.to_string e)

let eval_deterministic =
  Helpers.qcheck ~count:50 "golden model is deterministic"
    (Helpers.dag_gen ())
    (fun g ->
      let env = List.mapi (fun i v -> (v, i * 7)) (Dfg.Graph.inputs g) in
      Sim.Eval.run g env = Sim.Eval.run g env)

let suite =
  [
    test "golden model on diffeq" eval_diffeq;
    test "golden model reports missing inputs" eval_missing_input;
    test "guard activity" active_guards;
    test "machine executes the diamond" machine_runs_diamond;
    test "machine skips inactive branches" machine_skips_inactive;
    test "machine reports missing inputs" machine_missing_input;
    test "equivalence detects a corrupted controller" equiv_detects_broken_controller;
    test "random-input equivalence on facet" equiv_random_on_facet;
    eval_deterministic;
  ]
