let test name f = Alcotest.test_case name `Quick f

let no_excl _ _ = false
let pos c s = { Core.Frames.col = c; step = s }

let place_and_conflict () =
  let g = Core.Grid.create ~steps:4 ~cols:2 in
  Core.Grid.place g ~op:0 ~col:1 ~step:1 ~span:1;
  Alcotest.(check (list int)) "conflict at (1,1)" [ 0 ]
    (Core.Grid.conflicts g ~latency:None ~col:1 ~step:1 ~span:1);
  Alcotest.(check (list int)) "free at (2,1)" []
    (Core.Grid.conflicts g ~latency:None ~col:2 ~step:1 ~span:1);
  Alcotest.(check bool) "free predicate" true
    (Core.Grid.free g ~exclusive:no_excl ~latency:None ~op:1 ~span:1 (pos 2 1));
  Alcotest.(check bool) "occupied predicate" false
    (Core.Grid.free g ~exclusive:no_excl ~latency:None ~op:1 ~span:1 (pos 1 1))

let multicycle_span () =
  let g = Core.Grid.create ~steps:6 ~cols:1 in
  Core.Grid.place g ~op:0 ~col:1 ~step:2 ~span:3;
  (* occupies steps 2..4 *)
  Alcotest.(check (list int)) "overlap at 4" [ 0 ]
    (Core.Grid.conflicts g ~latency:None ~col:1 ~step:4 ~span:1);
  Alcotest.(check (list int)) "free at 5" []
    (Core.Grid.conflicts g ~latency:None ~col:1 ~step:5 ~span:1);
  Alcotest.(check (list int)) "span crossing into it" [ 0 ]
    (Core.Grid.conflicts g ~latency:None ~col:1 ~step:1 ~span:2)

let modulo_latency () =
  let g = Core.Grid.create ~steps:8 ~cols:1 in
  Core.Grid.place g ~op:0 ~col:1 ~step:1 ~span:1;
  (* With latency 3, steps 1, 4, 7 collide on the same unit. *)
  Alcotest.(check (list int)) "step 4 collides" [ 0 ]
    (Core.Grid.conflicts g ~latency:(Some 3) ~col:1 ~step:4 ~span:1);
  Alcotest.(check (list int)) "step 5 free" []
    (Core.Grid.conflicts g ~latency:(Some 3) ~col:1 ~step:5 ~span:1);
  Alcotest.(check (list int)) "step 7 collides" [ 0 ]
    (Core.Grid.conflicts g ~latency:(Some 3) ~col:1 ~step:7 ~span:1)

let exclusive_sharing () =
  let g = Core.Grid.create ~steps:4 ~cols:1 in
  Core.Grid.place g ~op:0 ~col:1 ~step:1 ~span:1;
  let excl i j = (i = 0 && j = 1) || (i = 1 && j = 0) in
  Alcotest.(check bool) "exclusive op may share" true
    (Core.Grid.free g ~exclusive:excl ~latency:None ~op:1 ~span:1 (pos 1 1));
  Alcotest.(check bool) "third op may not" false
    (Core.Grid.free g ~exclusive:excl ~latency:None ~op:2 ~span:1 (pos 1 1))

let grow_and_bounds () =
  let g = Core.Grid.create ~steps:3 ~cols:1 in
  Core.Grid.ensure_cols g 4;
  Alcotest.(check int) "grown" 4 (Core.Grid.cols g);
  Core.Grid.place g ~op:0 ~col:4 ~step:3 ~span:1;
  Alcotest.(check int) "used cols" 4 (Core.Grid.used_cols g);
  Alcotest.check_raises "column out of range"
    (Invalid_argument "Grid.place: column 5 outside 1..4") (fun () ->
      Core.Grid.place g ~op:1 ~col:5 ~step:1 ~span:1);
  Alcotest.check_raises "span beyond horizon"
    (Invalid_argument "Grid.place: steps 3..4 outside 1..3") (fun () ->
      Core.Grid.place g ~op:1 ~col:1 ~step:3 ~span:2)

let clear_resets () =
  let g = Core.Grid.create ~steps:3 ~cols:2 in
  Core.Grid.place g ~op:0 ~col:1 ~step:1 ~span:1;
  Core.Grid.clear g;
  Alcotest.(check (list int)) "empty after clear" []
    (Core.Grid.conflicts g ~latency:None ~col:1 ~step:1 ~span:1);
  Alcotest.(check int) "no used cols" 0 (Core.Grid.used_cols g)

let occupants_and_placements () =
  let g = Core.Grid.create ~steps:4 ~cols:2 in
  Core.Grid.place g ~op:7 ~col:2 ~step:2 ~span:2;
  Alcotest.(check (list int)) "occupant at (2,3)" [ 7 ]
    (Core.Grid.occupants g ~col:2 ~step:3);
  Alcotest.(check (list int)) "none at (2,4)" []
    (Core.Grid.occupants g ~col:2 ~step:4);
  Alcotest.(check (list (pair int (pair int (pair int int)))))
    "placement list"
    [ (7, (2, (2, 2))) ]
    (List.map (fun (a, b, c, d) -> (a, (b, (c, d)))) (Core.Grid.placements g))

let unplace_frees_cells () =
  let g = Core.Grid.create ~steps:6 ~cols:2 in
  Core.Grid.place g ~op:0 ~col:1 ~step:2 ~span:3;
  Core.Grid.place g ~op:1 ~col:2 ~step:1 ~span:1;
  Core.Grid.unplace g ~op:0;
  Alcotest.(check (list int)) "multi-span cells freed" []
    (Core.Grid.conflicts g ~latency:None ~col:1 ~step:2 ~span:3);
  Alcotest.(check bool) "position free again" true
    (Core.Grid.free g ~exclusive:no_excl ~latency:None ~op:2 ~span:3 (pos 1 2));
  Alcotest.(check (list (pair int (pair int (pair int int)))))
    "other placement survives"
    [ (1, (2, (1, 1))) ]
    (List.map (fun (a, b, c, d) -> (a, (b, (c, d)))) (Core.Grid.placements g));
  Alcotest.(check int) "used cols after unplace" 2 (Core.Grid.used_cols g);
  Core.Grid.unplace g ~op:1;
  Alcotest.(check int) "grid empty" 0 (Core.Grid.used_cols g)

let unplace_then_replace () =
  let g = Core.Grid.create ~steps:8 ~cols:1 in
  Core.Grid.place g ~op:0 ~col:1 ~step:1 ~span:1;
  Core.Grid.unplace g ~op:0;
  (* Re-placement at a different span must not trip the already-placed
     check, and modulo-latency conflicts must see only the new cells. *)
  Core.Grid.place g ~op:0 ~col:1 ~step:2 ~span:2;
  Alcotest.(check (list int)) "old congruence class free" []
    (Core.Grid.conflicts g ~latency:(Some 3) ~col:1 ~step:4 ~span:1);
  Alcotest.(check (list int)) "new cells collide" [ 0 ]
    (Core.Grid.conflicts g ~latency:(Some 3) ~col:1 ~step:5 ~span:1)

let check_unplace_invariant label f =
  match f () with
  | () -> Alcotest.failf "%s: expected Grid.Invariant" label
  | exception Core.Grid.Invariant d ->
      Alcotest.(check bool)
        (label ^ ": diagnostic names unplace")
        true
        (Helpers.contains ~sub:"Grid.unplace" (Diag.to_string d))

let unplace_unknown_raises () =
  let g = Core.Grid.create ~steps:3 ~cols:1 in
  check_unplace_invariant "never placed" (fun () ->
      Core.Grid.unplace g ~op:4);
  Core.Grid.place g ~op:4 ~col:1 ~step:1 ~span:1;
  Core.Grid.unplace g ~op:4;
  check_unplace_invariant "already unplaced" (fun () ->
      Core.Grid.unplace g ~op:4)

(* Regression: a double unplace used to decrement fill counters for cells it
   never freed, silently corrupting the column. The typed failure must leave
   the grid exactly as it was. *)
let double_unplace_preserves_state () =
  let g = Core.Grid.create ~steps:6 ~cols:2 in
  Core.Grid.place g ~op:0 ~col:1 ~step:2 ~span:3;
  Core.Grid.place g ~op:1 ~col:1 ~step:5 ~span:1;
  Core.Grid.unplace g ~op:0;
  check_unplace_invariant "double unplace rejected" (fun () ->
      Core.Grid.unplace g ~op:0);
  Alcotest.(check int) "fill untouched" 1 (Core.Grid.fill g ~col:1);
  Alcotest.(check (list int)) "survivor's cells intact" [ 1 ]
    (Core.Grid.conflicts g ~latency:None ~col:1 ~step:5 ~span:1);
  Alcotest.(check bool) "freed span reusable" true
    (Core.Grid.free g ~exclusive:no_excl ~latency:None ~op:2 ~span:3 (pos 1 2))

let fill_counts_popcount () =
  let g = Core.Grid.create ~steps:70 ~cols:2 in
  (* Span crossing the 63-bit word boundary within one column. *)
  Core.Grid.place g ~op:0 ~col:1 ~step:60 ~span:8;
  Core.Grid.place g ~op:1 ~col:1 ~step:1 ~span:2;
  Alcotest.(check int) "fill spans word boundary" 10 (Core.Grid.fill g ~col:1);
  Alcotest.(check int) "other column empty" 0 (Core.Grid.fill g ~col:2);
  Alcotest.(check bool) "cross-word span seen occupied" false
    (Core.Grid.free g ~exclusive:no_excl ~latency:None ~op:2 ~span:5 (pos 1 62));
  Alcotest.(check bool) "cross-word gap still free" true
    (Core.Grid.free g ~exclusive:no_excl ~latency:None ~op:2 ~span:57 (pos 1 3));
  Core.Grid.unplace g ~op:0;
  Alcotest.(check int) "fill after unplace" 2 (Core.Grid.fill g ~col:1)

(* Shared cells (mutually exclusive ops) must only come free once the last
   occupant leaves. *)
let shared_cell_unplace_order () =
  let g = Core.Grid.create ~steps:4 ~cols:1 in
  let excl _ _ = true in
  Core.Grid.place g ~op:0 ~col:1 ~step:2 ~span:1;
  Core.Grid.place g ~op:1 ~col:1 ~step:2 ~span:1;
  Core.Grid.place g ~op:2 ~col:1 ~step:2 ~span:1;
  Alcotest.(check int) "shared cell counts once" 1 (Core.Grid.fill g ~col:1);
  Core.Grid.unplace g ~op:1;
  Alcotest.(check bool) "still occupied for strangers" false
    (Core.Grid.free g ~exclusive:no_excl ~latency:None ~op:9 ~span:1 (pos 1 2));
  Alcotest.(check bool) "still open to exclusive ops" true
    (Core.Grid.free g ~exclusive:excl ~latency:None ~op:9 ~span:1 (pos 1 2));
  Core.Grid.unplace g ~op:0;
  Alcotest.(check (list int)) "last occupant remains" [ 2 ]
    (Core.Grid.occupants g ~col:1 ~step:2);
  Core.Grid.unplace g ~op:2;
  Alcotest.(check bool) "free once all gone" true
    (Core.Grid.free g ~exclusive:no_excl ~latency:None ~op:9 ~span:1 (pos 1 2));
  Alcotest.(check int) "fill drained" 0 (Core.Grid.fill g ~col:1)

let double_place_raises () =
  let g = Core.Grid.create ~steps:3 ~cols:2 in
  Core.Grid.place g ~op:0 ~col:1 ~step:1 ~span:1;
  Alcotest.check_raises "op already placed"
    (Invalid_argument "Grid.place: op 0 already placed") (fun () ->
      Core.Grid.place g ~op:0 ~col:2 ~step:2 ~span:1)

let place_unplace_roundtrip =
  Helpers.qcheck ~count:200 "place; unplace leaves the grid as it was"
    QCheck2.Gen.(quad (int_range 1 4) (int_range 1 6) (int_range 1 3)
                   (int_range 2 5))
    (fun (col, step, span, l) ->
      let g = Core.Grid.create ~steps:12 ~cols:4 in
      Core.Grid.place g ~op:0 ~col:2 ~step:3 ~span:2;
      let before =
        (Core.Grid.placements g, Core.Grid.used_cols g,
         Core.Grid.conflicts g ~latency:(Some l) ~col ~step ~span:1)
      in
      if step + span - 1 <= 12 then begin
        Core.Grid.place g ~op:9 ~col ~step ~span;
        Core.Grid.unplace g ~op:9
      end;
      (Core.Grid.placements g, Core.Grid.used_cols g,
       Core.Grid.conflicts g ~latency:(Some l) ~col ~step ~span:1)
      = before)

let modulo_identity =
  Helpers.qcheck ~count:200 "latency L folds steps s and s+L together"
    QCheck2.Gen.(triple (int_range 1 6) (int_range 2 5) (int_range 1 3))
    (fun (s, l, span) ->
      let horizon = s + l + span + 1 in
      let g = Core.Grid.create ~steps:horizon ~cols:1 in
      Core.Grid.place g ~op:0 ~col:1 ~step:s ~span;
      Core.Grid.conflicts g ~latency:(Some l) ~col:1 ~step:(s + l) ~span <> [])

let suite =
  [
    test "place and conflict" place_and_conflict;
    test "multi-cycle spans occupy consecutive steps" multicycle_span;
    test "functional latency folds steps" modulo_latency;
    test "mutually exclusive ops share a cell" exclusive_sharing;
    test "growth and bounds checks" grow_and_bounds;
    test "clear resets" clear_resets;
    test "occupants and placements" occupants_and_placements;
    test "unplace frees covered cells" unplace_frees_cells;
    test "unplace then replace with a new span" unplace_then_replace;
    test "unplace of an unknown op raises" unplace_unknown_raises;
    test "double unplace leaves the grid untouched" double_unplace_preserves_state;
    test "fill popcounts across word boundaries" fill_counts_popcount;
    test "shared cells free only with the last occupant" shared_cell_unplace_order;
    test "double placement of one op raises" double_place_raises;
    place_unplace_roundtrip;
    modulo_identity;
  ]
