let test name f = Alcotest.test_case name `Quick f

let synthesise g =
  let lib = Celllib.Ncr.for_graph g in
  let o =
    Helpers.check_okd "mfsa"
      (Core.Mfsa.run ~library:lib ~cs:(Dfg.Bounds.critical_path g + 1) g)
  in
  let ctrl =
    Helpers.check_ok "ctrl"
      (Rtl.Controller.generate o.Core.Mfsa.datapath ~delay:(fun _ -> 1))
  in
  (o.Core.Mfsa.datapath, ctrl)

(* An accumulator: acc' = acc + x*x — one mult, one add, fed back. *)
let accumulator () =
  Helpers.graph_exn ~inputs:[ "x"; "acc" ]
    [
      Helpers.op "sq" Dfg.Op.Mul [ "x"; "x" ];
      Helpers.op "acc_next" Dfg.Op.Add [ "acc"; "sq" ];
    ]

let accumulator_stream () =
  let g = accumulator () in
  let dp, ctrl = synthesise g in
  let feedback = [ ("acc_next", "acc") ] in
  let stream k = [ ("x", k + 1) ] in
  let out =
    Helpers.check_ok "iterate"
      (Sim.Iterate.run dp ctrl ~feedback ~consts:[] ~init:[ ("acc", 0) ]
         ~stream ~iterations:4)
  in
  (* acc accumulates 1 + 4 + 9 + 16. *)
  let accs = List.map (fun vs -> List.assoc "acc_next" vs) out in
  Alcotest.(check (list int)) "running sums" [ 1; 5; 14; 30 ] accs;
  (match
     Sim.Iterate.check dp ctrl ~feedback ~consts:[] ~init:[ ("acc", 0) ]
       ~stream ~iterations:4
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e)

let biquad_filter_stream () =
  (* Run the biquad over an impulse and check the machine against the
     golden model with both sections' state registers fed back. *)
  let g = Workloads.Classic.biquad () in
  let dp, ctrl = synthesise g in
  let feedback =
    [ ("s1n1", "s11"); ("s2n1", "s21"); ("s1n2", "s12"); ("s2n2", "s22") ]
  in
  let consts =
    [ ("b01", 2); ("b11", 1); ("b21", 1); ("a11", 1); ("a21", 0);
      ("b02", 1); ("b12", 0); ("b22", 0); ("a12", 0); ("a22", 1) ]
  in
  let init = [ ("s11", 0); ("s21", 0); ("s12", 0); ("s22", 0) ] in
  let stream k = [ ("xin", if k = 0 then 1 else 0) ] in
  match
    Sim.Iterate.check dp ctrl ~feedback ~consts ~init ~stream ~iterations:8
  with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let ar_filter_stream () =
  let g = Workloads.Classic.ar_filter () in
  let dp, ctrl = synthesise g in
  let feedback =
    [ ("f0", "b0"); ("bn1", "b1"); ("bn2", "b2"); ("bn3", "b3") ]
  in
  let consts =
    [ ("k1", 1); ("k2", -1); ("k3", 1); ("k4", -1);
      ("v0", 1); ("v1", 2); ("v2", 1); ("v3", 2); ("v4", 1) ]
  in
  let init = [ ("b0", 0); ("b1", 0); ("b2", 0); ("b3", 0) ] in
  let stream k = [ ("xin", (k * 3 mod 7) - 3) ] in
  match
    Sim.Iterate.check dp ctrl ~feedback ~consts ~init ~stream ~iterations:6
  with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let guarded_feedback_holds_state () =
  (* When the feedback source sits on an untaken branch, the state holds. *)
  let g =
    Helpers.graph_exn ~inputs:[ "x"; "acc" ]
      [
        Helpers.op "go" Dfg.Op.Gt [ "x"; "acc" ];
        ("acc_next", Dfg.Op.Add, [ "acc"; "x" ], [ ("go", true) ]);
      ]
  in
  let dp, ctrl = synthesise g in
  let feedback = [ ("acc_next", "acc") ] in
  let stream k = [ ("x", List.nth [ 5; 1; 9 ] k) ] in
  let out =
    Helpers.check_ok "iterate"
      (Sim.Iterate.run dp ctrl ~feedback ~consts:[] ~init:[ ("acc", 0) ]
         ~stream ~iterations:3)
  in
  let accs =
    List.map (fun vs -> List.assoc_opt "acc_next" vs) out
  in
  (* x=5 > 0: acc 5; x=1 < 5: held; x=9 > 5: 14. *)
  Alcotest.(check (list (option int))) "guarded accumulation"
    [ Some 5; None; Some 14 ] accs

let bad_feedback_rejected () =
  let g = accumulator () in
  let dp, ctrl = synthesise g in
  ignore
    (Helpers.check_err "unknown output"
       (Sim.Iterate.run dp ctrl ~feedback:[ ("nope", "acc") ] ~consts:[]
          ~init:[ ("acc", 0) ]
          ~stream:(fun _ -> [ ("x", 1) ])
          ~iterations:1));
  ignore
    (Helpers.check_err "unknown input"
       (Sim.Iterate.run dp ctrl ~feedback:[ ("acc_next", "nope") ] ~consts:[]
          ~init:[ ("acc", 0) ]
          ~stream:(fun _ -> [ ("x", 1) ])
          ~iterations:1));
  ignore
    (Helpers.check_err "missing init"
       (Sim.Iterate.run dp ctrl ~feedback:[ ("acc_next", "acc") ] ~consts:[]
          ~init:[]
          ~stream:(fun _ -> [ ("x", 1) ])
          ~iterations:1))

let suite =
  [
    test "accumulator over a stream" accumulator_stream;
    test "biquad filter over an impulse" biquad_filter_stream;
    test "AR lattice filter over a stream" ar_filter_stream;
    test "guarded feedback holds state" guarded_feedback_holds_state;
    test "bad feedback rejected" bad_feedback_rejected;
  ]
