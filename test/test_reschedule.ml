(* Incremental rescheduling (Core.Mfs.reschedule): validity, cone locality
   (the op-touch counter), and cost agreement against full rescheduling on
   200 random single-edit deltas.  The deltas are generated with
   Workloads.Prng from fixed seeds — fully deterministic, no qcheck
   shrinking — so CI sees the exact same 200 probes every run. *)

let test name f = Alcotest.test_case name `Quick f

let rows g =
  List.map
    (fun (nd : Dfg.Graph.node) ->
      ( nd.Dfg.Graph.name, nd.Dfg.Graph.kind, nd.Dfg.Graph.args,
        nd.Dfg.Graph.guards ))
    (Dfg.Graph.nodes g)

let units s =
  List.fold_left (fun a (_, k) -> a + k) 0 (Core.Schedule.fu_counts s)

(* One random single edit: remove a sink, add a sink, flip an op's class, or
   rewire one operand to an earlier value.  Returns the edited graph and the
   delta list a caller would declare. *)
let edit rng g =
  let nodes = Dfg.Graph.nodes g in
  let values =
    Dfg.Graph.inputs g
    @ List.map (fun (n : Dfg.Graph.node) -> n.Dfg.Graph.name) nodes
  in
  match Workloads.Prng.int rng 4 with
  | 0 ->
      let sinks = Dfg.Graph.sinks g in
      let i = List.nth sinks (Workloads.Prng.int rng (List.length sinks)) in
      let nm = (Dfg.Graph.node g i).Dfg.Graph.name in
      ( Dfg.Graph.of_ops ~inputs:(Dfg.Graph.inputs g)
          (List.filter (fun (n, _, _, _) -> n <> nm) (rows g)),
        [ Core.Mfs.Op_removed nm ] )
  | 1 ->
      let a = Workloads.Prng.pick rng values in
      let b = Workloads.Prng.pick rng values in
      ( Dfg.Graph.of_ops ~inputs:(Dfg.Graph.inputs g)
          (rows g @ [ ("zz_new", Dfg.Op.Add, [ a; b ], []) ]),
        [ Core.Mfs.Op_added "zz_new" ] )
  | 2 ->
      let nd = Workloads.Prng.pick rng nodes in
      let kind' =
        match nd.Dfg.Graph.kind with
        | Dfg.Op.Add -> Dfg.Op.Mul
        | Dfg.Op.Mul -> Dfg.Op.Add
        | Dfg.Op.Sub -> Dfg.Op.Mul
        | k -> k
      in
      ( Dfg.Graph.of_ops ~inputs:(Dfg.Graph.inputs g)
          (List.map
             (fun (n, k, a, gd) ->
               if n = nd.Dfg.Graph.name then (n, kind', a, gd)
               else (n, k, a, gd))
             (rows g)),
        [ Core.Mfs.Op_changed nd.Dfg.Graph.name ] )
  | _ -> (
      let nd = Workloads.Prng.pick rng nodes in
      let earlier =
        Dfg.Graph.inputs g
        @ List.filter_map
            (fun (n : Dfg.Graph.node) ->
              if n.Dfg.Graph.id < nd.Dfg.Graph.id then
                Some n.Dfg.Graph.name
              else None)
            nodes
      in
      match nd.Dfg.Graph.args with
      | [] -> (Ok g, [])
      | args ->
          let k = Workloads.Prng.int rng (List.length args) in
          let repl = Workloads.Prng.pick rng earlier in
          ( Dfg.Graph.of_ops ~inputs:(Dfg.Graph.inputs g)
              (List.map
                 (fun (n, kd, a, gd) ->
                   if n = nd.Dfg.Graph.name then
                     (n, kd, List.mapi (fun j x -> if j = k then repl else x) a,
                      gd)
                   else (n, kd, a, gd))
                 (rows g)),
            [ Core.Mfs.Op_changed nd.Dfg.Graph.name ] ))

(* The edit cone, computed independently of the implementation: the declared
   deltas (honoured even when not structurally visible — a weight change
   lives in the config, not the graph) plus a structural diff against the
   old graph (new name, changed kind/args/guards) plus kept positions
   violating the new static bounds, closed over forward data dependencies.
   [reschedule]'s op-touch counter must equal its size. *)
let expected_cone og (base : Core.Mfs.outcome) g deltas ~cs =
  let n = Dfg.Graph.num_nodes g in
  let bounds =
    match Core.Timeframe.bounds Core.Config.default g ~cs with
    | Ok b -> b
    | Error e -> Alcotest.failf "bounds: %s" e
  in
  let ostart = base.Core.Mfs.schedule.Core.Schedule.start in
  let in_cone = Array.make n false in
  let seed_name nm =
    match Dfg.Graph.find g nm with
    | Some nd -> in_cone.(nd.Dfg.Graph.id) <- true
    | None -> ()
  in
  List.iter
    (function
      | Core.Mfs.Op_added nm | Core.Mfs.Op_changed nm -> seed_name nm
      | Core.Mfs.Op_removed nm -> (
          match Dfg.Graph.find og nm with
          | None -> ()
          | Some ond ->
              List.iter
                (fun s -> seed_name (Dfg.Graph.node og s).Dfg.Graph.name)
                (Dfg.Graph.succs og ond.Dfg.Graph.id)))
    deltas;
  List.iter
    (fun (nd : Dfg.Graph.node) ->
      let i = nd.Dfg.Graph.id in
      match Dfg.Graph.find og nd.Dfg.Graph.name with
      | None -> in_cone.(i) <- true
      | Some ond ->
          if
            ond.Dfg.Graph.kind <> nd.Dfg.Graph.kind
            || ond.Dfg.Graph.args <> nd.Dfg.Graph.args
            || ond.Dfg.Graph.guards <> nd.Dfg.Graph.guards
            || ostart.(ond.Dfg.Graph.id) < bounds.Dfg.Bounds.asap.(i)
            || ostart.(ond.Dfg.Graph.id) > bounds.Dfg.Bounds.alap.(i)
          then in_cone.(i) <- true)
    (Dfg.Graph.nodes g);
  let rec close i =
    List.iter
      (fun s ->
        if not in_cone.(s) then begin
          in_cone.(s) <- true;
          close s
        end)
      (Dfg.Graph.succs g i)
  in
  List.iteri (fun i c -> if c then close i) (Array.to_list in_cone);
  in_cone

(* The 200-probe sweep.  Per probe: the incremental result exists, is
   check_diags-clean within the same budget the full reschedule meets, its
   op-touch counter equals the independently computed cone size, and every
   op outside the cone sits exactly at its old position.  Across all
   probes: the cone stays a small fraction of the graph, and a solid
   majority of probes match the full reschedule's placement cost
   (makespan, total units) exactly — the heuristic equivalence; the rest
   remain valid schedules under the same budget. *)
let single_edit_deltas () =
  let probes = ref 0 in
  let cost_equal = ref 0 in
  let fallbacks = ref 0 in
  let cone_sum = ref 0 in
  let ops_sum = ref 0 in
  let seed = ref 0 in
  while !probes < 200 do
    incr seed;
    let rng = Workloads.Prng.create !seed in
    let ops = 20 + Workloads.Prng.int rng 40 in
    let spec =
      { Workloads.Random_dag.default with Workloads.Random_dag.ops }
    in
    match Workloads.Random_dag.generate ~spec ~seed:!seed () with
    | Error _ -> ()
    | Ok g -> (
        let cs =
          Dfg.Bounds.critical_path g + 1 + Workloads.Prng.int rng 3
        in
        match Core.Mfs.run g (Core.Mfs.Time { cs }) with
        | Error _ -> ()
        | Ok base -> (
            match edit rng g with
            | Error _, _ -> ()
            | Ok g', deltas -> (
                let cs' = max cs (Dfg.Bounds.critical_path g' + 1) in
                let full = Core.Mfs.run g' (Core.Mfs.Time { cs = cs' }) in
                let inc =
                  Core.Mfs.reschedule ~old:base g' deltas
                    (Core.Mfs.Time { cs = cs' })
                in
                match (full, inc) with
                | Error _, Error _ -> ()
                | Error e, Ok _ ->
                    Alcotest.failf "seed %d: only the full path failed: %s"
                      !seed (Diag.message e)
                | Ok _, Error e ->
                    Alcotest.failf
                      "seed %d: only the incremental path failed: %s" !seed
                      (Diag.message e)
                | Ok f, Ok (o, stats) ->
                    incr probes;
                    let s = o.Core.Mfs.schedule in
                    (match Core.Schedule.check_diags s with
                    | [] -> ()
                    | ds ->
                        Alcotest.failf "seed %d: incremental invalid: %s"
                          !seed
                          (Diag.message (List.hd ds)));
                    if Core.Schedule.makespan s > cs' then
                      Alcotest.failf "seed %d: budget %d exceeded" !seed cs';
                    if stats.Core.Mfs.fell_back then incr fallbacks
                    else begin
                      let cone = expected_cone g base g' deltas ~cs:cs' in
                      let size =
                        Array.fold_left
                          (fun a c -> if c then a + 1 else a)
                          0 cone
                      in
                      Alcotest.(check int)
                        (Printf.sprintf "seed %d: op-touch counter" !seed)
                        size stats.Core.Mfs.replaced;
                      (* Kept ops did not move. *)
                      let ostart =
                        base.Core.Mfs.schedule.Core.Schedule.start
                      in
                      let ocol =
                        Option.get base.Core.Mfs.schedule.Core.Schedule.col
                      in
                      let col = Option.get s.Core.Schedule.col in
                      List.iter
                        (fun (nd : Dfg.Graph.node) ->
                          let i = nd.Dfg.Graph.id in
                          if not cone.(i) then
                            match Dfg.Graph.find g nd.Dfg.Graph.name with
                            | None ->
                                Alcotest.failf
                                  "seed %d: kept op %s has no old position"
                                  !seed nd.Dfg.Graph.name
                            | Some ond ->
                                let oid = ond.Dfg.Graph.id in
                                if
                                  s.Core.Schedule.start.(i) <> ostart.(oid)
                                  || col.(i) <> ocol.(oid)
                                then
                                  Alcotest.failf
                                    "seed %d: op %s outside the cone moved"
                                    !seed nd.Dfg.Graph.name)
                        (Dfg.Graph.nodes g');
                      cone_sum := !cone_sum + size;
                      ops_sum := !ops_sum + Dfg.Graph.num_nodes g'
                    end;
                    let cost sched =
                      (Core.Schedule.makespan sched, units sched)
                    in
                    if cost f.Core.Mfs.schedule = cost s then
                      incr cost_equal)))
  done;
  if !fallbacks > 20 then
    Alcotest.failf "incremental path fell back %d/200 times" !fallbacks;
  if !cone_sum * 2 > !ops_sum then
    Alcotest.failf "cones cover %d of %d ops — not local" !cone_sum !ops_sum;
  if !cost_equal < 120 then
    Alcotest.failf
      "only %d/200 probes matched the full reschedule cost exactly"
      !cost_equal

(* A delta that changes nothing re-places nothing and reproduces the old
   schedule bit for bit, including the incrementally maintained energy. *)
let identity_delta () =
  let spec =
    { Workloads.Random_dag.default with Workloads.Random_dag.ops = 30 }
  in
  let g = Helpers.check_okd "dag" (Workloads.Random_dag.generate ~spec ~seed:5 ()) in
  let cs = Dfg.Bounds.critical_path g + 2 in
  let base = Helpers.check_okd "run" (Core.Mfs.run g (Core.Mfs.Time { cs })) in
  let o, stats =
    Helpers.check_okd "reschedule"
      (Core.Mfs.reschedule ~old:base g [] (Core.Mfs.Time { cs }))
  in
  Alcotest.(check bool) "no fallback" false stats.Core.Mfs.fell_back;
  Alcotest.(check int) "nothing re-placed" 0 stats.Core.Mfs.replaced;
  Alcotest.(check int) "everything kept" (Dfg.Graph.num_nodes g)
    stats.Core.Mfs.kept;
  Alcotest.(check (array int)) "starts unchanged"
    base.Core.Mfs.schedule.Core.Schedule.start
    o.Core.Mfs.schedule.Core.Schedule.start;
  Alcotest.(check (array int)) "columns unchanged"
    (Option.get base.Core.Mfs.schedule.Core.Schedule.col)
    (Option.get o.Core.Mfs.schedule.Core.Schedule.col);
  Alcotest.(check int) "energy re-derived incrementally" base.Core.Mfs.energy
    o.Core.Mfs.energy

(* Resource mode has no single frame context to patch — reschedule must
   transparently produce the full result. *)
let resource_falls_back () =
  let g = Helpers.diamond () in
  let cs = Dfg.Bounds.critical_path g + 1 in
  let base = Helpers.check_okd "run" (Core.Mfs.run g (Core.Mfs.Time { cs })) in
  let spec = Core.Mfs.Resource { limits = [ ("*", 1) ] } in
  let o, stats =
    Helpers.check_okd "reschedule" (Core.Mfs.reschedule ~old:base g [] spec)
  in
  let full = Helpers.check_okd "full" (Core.Mfs.run g spec) in
  Alcotest.(check bool) "fell back" true stats.Core.Mfs.fell_back;
  Alcotest.(check (array int)) "same starts as the full run"
    full.Core.Mfs.schedule.Core.Schedule.start
    o.Core.Mfs.schedule.Core.Schedule.start

(* Sensitivity probes ride the incremental path: pruning a sink never
   re-places anything (a sink has no descendants and removing a consumer
   only loosens its ancestors' ALAP), and the pruned cost never exceeds the
   base schedule's. *)
let sensitivity_rides_incremental () =
  let spec =
    { Workloads.Random_dag.default with Workloads.Random_dag.ops = 40 }
  in
  let g = Helpers.check_okd "dag" (Workloads.Random_dag.generate ~spec ~seed:7 ()) in
  let cs = Dfg.Bounds.critical_path g + 2 in
  let base = Helpers.check_okd "run" (Core.Mfs.run g (Core.Mfs.Time { cs })) in
  let impacts = Explore.Refine.sensitivity ~graph:g ~base ~cs () in
  Alcotest.(check int) "one probe per sink"
    (List.length (Dfg.Graph.sinks g))
    (List.length impacts);
  let base_units = units base.Core.Mfs.schedule in
  let base_makespan = Core.Schedule.makespan base.Core.Mfs.schedule in
  List.iter
    (fun (i : Explore.Refine.impact) ->
      Alcotest.(check bool)
        (i.Explore.Refine.i_op ^ ": incremental") false
        i.Explore.Refine.i_fell_back;
      Alcotest.(check int)
        (i.Explore.Refine.i_op ^ ": empty cone")
        0 i.Explore.Refine.i_replaced;
      if i.Explore.Refine.i_units > base_units then
        Alcotest.failf "%s: pruning raised units" i.Explore.Refine.i_op;
      if i.Explore.Refine.i_makespan > base_makespan then
        Alcotest.failf "%s: pruning raised makespan" i.Explore.Refine.i_op)
    impacts

let suite =
  [
    test "200 random single-edit deltas" single_edit_deltas;
    test "identity delta keeps everything" identity_delta;
    test "resource spec falls back to full run" resource_falls_back;
    test "sink sensitivity rides the incremental path"
      sensitivity_rides_incremental;
  ]
