open Serve
module Jsonl = Batch.Jsonl

(* Half-close tests write into sockets the peer may have shut; the test
   binary must survive EPIPE the same way synth does. *)
let () = Sys.set_signal Sys.sigpipe Sys.Signal_ignore

let test name f = Alcotest.test_case name `Quick f

let tmp name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "mfs-serve-%d-%s" (Unix.getpid ()) name)

let rm path = try Sys.remove path with Sys_error _ -> ()

(* --- Framing ------------------------------------------------------------- *)

let frame_roundtrip_any_split () =
  let payloads = [ "{}"; String.make 300 'x'; "{\"op\":\"ping\"}" ] in
  let wire = String.concat "" (List.map Frame.encode payloads) in
  (* Whole stream in one feed. *)
  let d = Frame.decoder () in
  let got = Helpers.check_okd "feed all" (Frame.feed d wire) in
  Alcotest.(check (list string)) "one feed" payloads got;
  Alcotest.(check bool) "nothing pending" false (Frame.has_partial d);
  (* Byte-by-byte: framing must not care how the bytes are chunked. *)
  let d = Frame.decoder () in
  let got = ref [] in
  String.iter
    (fun c ->
      got :=
        !got
        @ Helpers.check_okd "feed byte" (Frame.feed d (String.make 1 c)))
    wire;
  Alcotest.(check (list string)) "byte by byte" payloads !got

let frame_partial_is_visible () =
  let d = Frame.decoder () in
  let wire = Frame.encode "{\"op\":\"ping\"}" in
  let cut = String.length wire - 3 in
  ignore
    (Helpers.check_okd "feed prefix" (Frame.feed d (String.sub wire 0 cut)));
  Alcotest.(check bool) "mid-frame" true (Frame.has_partial d);
  let got =
    Helpers.check_okd "feed rest"
      (Frame.feed d (String.sub wire cut (String.length wire - cut)))
  in
  Alcotest.(check (list string)) "completes" [ "{\"op\":\"ping\"}" ] got;
  Alcotest.(check bool) "drained" false (Frame.has_partial d)

let frame_oversize_refused_from_header () =
  let d = Frame.decoder ~max_frame:64 () in
  (* Header alone announces 65 bytes: refused before any payload byte. *)
  let header = Bytes.create Frame.header_bytes in
  Bytes.set_int32_be header 0 65l;
  let e =
    Helpers.check_errd "oversize" (Frame.feed d (Bytes.to_string header))
  in
  Alcotest.(check string) "typed code" "serve.frame-too-large" e.Diag.code;
  (* A negative length is the same poison. *)
  let d = Frame.decoder ~max_frame:64 () in
  Bytes.set_int32_be header 0 (-1l);
  let e =
    Helpers.check_errd "negative" (Frame.feed d (Bytes.to_string header))
  in
  Alcotest.(check string) "negative length refused" "serve.frame-too-large"
    e.Diag.code

(* --- Protocol ------------------------------------------------------------ *)

let request_parses () =
  let payload =
    Client.build ~op:"schedule" ~id:"42"
      [
        ("spec", Jsonl.String "diffeq");
        ("cs", Jsonl.Int 4);
        ("weights", Jsonl.String "1/1/1/20");
        ("style", Jsonl.Int 2);
        ("deadline", Jsonl.Float 2.5);
      ]
  in
  let env = Helpers.check_okd "parse" (Protocol.parse_request payload) in
  Alcotest.(check string) "id echoes" "42" env.Protocol.req_id;
  Alcotest.(check (option (float 1e-9))) "deadline" (Some 2.5)
    env.Protocol.req_deadline;
  Alcotest.(check string) "op" "schedule"
    (Protocol.request_op_name env.Protocol.request)

let request_errors_are_typed () =
  let code payload =
    (Helpers.check_errd "reject" (Protocol.parse_request payload)).Diag.code
  in
  Alcotest.(check string) "no op" "serve.bad-request" (code "{\"id\":\"1\"}");
  Alcotest.(check string) "unknown op" "serve.bad-request"
    (code "{\"op\":\"frobnicate\",\"id\":\"1\"}");
  Alcotest.(check string) "malformed JSON" "batch.jsonl" (code "{nope");
  let big =
    Printf.sprintf "{\"op\":\"ping\",\"id\":%S}" (String.make 256 'x')
  in
  Alcotest.(check string) "over the byte ceiling" "batch.frame-too-large"
    (Helpers.check_errd "bounded"
       (Protocol.parse_request ~max_bytes:64 big))
      .Diag.code

let response_roundtrip () =
  let ok = Protocol.ok_response ~id:"7" ~cached:true (Jsonl.Obj []) in
  let r = Helpers.check_okd "parse ok" (Protocol.parse_response ok) in
  Alcotest.(check bool) "ok" true r.Protocol.r_ok;
  Alcotest.(check bool) "cached" true r.Protocol.r_cached;
  Alcotest.(check string) "id" "7" r.Protocol.r_id;
  let err =
    Protocol.error_response ~id:"8" ~retry_after:1.5
      (Diag.unavailable ~code:"serve.overloaded" "queue full")
  in
  let r = Helpers.check_okd "parse err" (Protocol.parse_response err) in
  Alcotest.(check bool) "not ok" false r.Protocol.r_ok;
  Alcotest.(check (option (float 1e-9))) "retry hint" (Some 1.5)
    r.Protocol.r_retry_after;
  match r.Protocol.r_diag with
  | Some d ->
      Alcotest.(check string) "diag code" "serve.overloaded" d.Diag.code;
      Alcotest.(check int) "unavailable exit" 7 (Diag.exit_code d)
  | None -> Alcotest.fail "error response lost its diag"

(* --- Admission ----------------------------------------------------------- *)

let admission_sheds_beyond_limit () =
  let a = Admission.create ~limit:2 in
  let admit x = Admission.try_admit a ~in_flight:1 ~workers:2 x in
  Alcotest.(check bool) "first admitted" true (admit "a" = `Admitted);
  Alcotest.(check bool) "second admitted" true (admit "b" = `Admitted);
  (match admit "c" with
  | `Admitted -> Alcotest.fail "third must shed"
  | `Shed eta ->
      Alcotest.(check bool)
        (Printf.sprintf "hint %.2f clamped to [0.5, 60]" eta)
        true
        (eta >= 0.5 && eta <= 60.));
  Alcotest.(check int) "shed counted" 1 (Admission.shed_count a);
  Alcotest.(check (option string)) "FIFO pop" (Some "a") (Admission.pop a);
  Alcotest.(check (option string)) "FIFO pop 2" (Some "b") (Admission.pop a);
  Alcotest.(check (option string)) "drained" None (Admission.pop a);
  Alcotest.(check int) "depth zero" 0 (Admission.depth a)

(* --- Live daemon --------------------------------------------------------- *)

let start_daemon cfg =
  let r, w = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      let ready () =
        ignore (Unix.write w (Bytes.make 1 'r') 0 1);
        try Unix.close w with Unix.Unix_error _ -> ()
      in
      let code =
        match Daemon.run ~ready cfg with Ok () -> 0 | Error _ -> 1
      in
      Unix._exit code
  | pid -> (
      Unix.close w;
      match Unix.select [ r ] [] [] 15. with
      | [], _, _ ->
          Unix.close r;
          Unix.kill pid Sys.sigkill;
          Alcotest.fail "daemon never became ready"
      | _ ->
          ignore (Unix.read r (Bytes.create 1) 0 1);
          Unix.close r;
          pid)

let rec wait_exit pid =
  match Unix.waitpid [] pid with
  | _, status -> status
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait_exit pid

let stop_daemon pid =
  Unix.kill pid Sys.sigterm;
  match wait_exit pid with
  | Unix.WEXITED 0 -> ()
  | Unix.WEXITED n -> Alcotest.failf "daemon drained with exit %d, not 0" n
  | _ -> Alcotest.fail "daemon killed by signal during drain"

let connect socket = Helpers.check_okd "connect" (Client.connect socket)

let schedule_payload ~id ?(weights = "1/1/1/1") ?inject ?deadline () =
  Client.build ~op:"schedule" ~id
    ([
       ("spec", Jsonl.String "diffeq");
       ("cs", Jsonl.Int 0);
       ("weights", Jsonl.String weights);
     ]
    @ (match inject with
      | None -> []
      | Some f -> [ ("inject", Jsonl.String f) ])
    @
    match deadline with
    | None -> []
    | Some d -> [ ("deadline", Jsonl.Float d) ])

let request c payload =
  Helpers.check_okd "request" (Client.request ~timeout:30. c payload)

let response_code (r : Protocol.response) =
  if r.Protocol.r_ok then "ok"
  else
    match r.Protocol.r_diag with
    | Some d -> d.Diag.code
    | None -> "error-without-diag"

(* One daemon, the happy paths: a schedule answered fresh then from the
   cache, health/stats, a half-closed client still answered, an oversized
   frame refused — and a SIGTERM drain that exits 0. *)
let serve_roundtrip_cache_and_drain () =
  let socket = tmp "rt.sock" and cache = tmp "rt-cache.jsonl" in
  let journal = tmp "rt-journal.jsonl" in
  List.iter rm [ socket; cache; journal ];
  let cfg =
    {
      (Daemon.default ~socket) with
      Daemon.workers = 2;
      max_frame = 64 * 1024;
      cache_path = Some cache;
      journal_path = Some journal;
    }
  in
  let pid = start_daemon cfg in
  Fun.protect ~finally:(fun () -> List.iter rm [ socket; cache; journal ])
  @@ fun () ->
  let c = connect socket in
  let r1 = request c (schedule_payload ~id:"s1" ()) in
  Alcotest.(check string) "schedule ok" "ok" (response_code r1);
  Alcotest.(check bool) "first is fresh" false r1.Protocol.r_cached;
  Alcotest.(check string) "id echoed" "s1" r1.Protocol.r_id;
  (match r1.Protocol.r_payload with
  | Some doc ->
      Alcotest.(check bool) "metrics present" true
        (Jsonl.int "csteps" doc <> None)
  | None -> Alcotest.fail "ok response without payload");
  let r2 = request c (schedule_payload ~id:"s2" ()) in
  Alcotest.(check bool) "repeat served from cache" true r2.Protocol.r_cached;
  let h = request c (Client.build ~op:"health" ~id:"h" []) in
  Alcotest.(check string) "health ok" "ok" (response_code h);
  let s = request c (Client.build ~op:"stats" ~id:"st" []) in
  (match s.Protocol.r_payload with
  | Some doc ->
      Alcotest.(check bool) "stats report cache hits" true
        (match Jsonl.member "cache" doc with
        | Some cache_doc ->
            Option.value ~default:0 (Jsonl.int "hits" cache_doc) >= 1
        | None -> false)
  | None -> Alcotest.fail "stats response without payload");
  Client.close c;
  (* Half-close: shut our send side right after the frame; the response
     must still arrive on the owed connection. *)
  let hc = connect socket in
  Helpers.check_okd "send"
    (Client.send hc (schedule_payload ~id:"half" ()));
  (try Unix.shutdown (Client.fd hc) Unix.SHUTDOWN_SEND
   with Unix.Unix_error _ -> ());
  (match Helpers.check_okd "recv" (Client.recv ~timeout:30. hc) with
  | Some r -> Alcotest.(check string) "half-close answered" "ok" (response_code r)
  | None -> Alcotest.fail "daemon closed a half-closed conn unanswered");
  Client.close hc;
  (* Oversize: a frame over the daemon's ceiling gets a typed refusal. *)
  let ov = connect socket in
  Helpers.check_okd "send oversize"
    (Client.send ov (String.make ((64 * 1024) + 1) 'x'));
  (match Client.recv ~timeout:30. ov with
  | Ok (Some r) ->
      Alcotest.(check string) "refused from the header"
        "serve.frame-too-large" (response_code r)
  | Ok None | Error _ -> Alcotest.fail "no typed oversize refusal");
  Client.close ov;
  stop_daemon pid;
  (* Crash-only durability: both stores exist and the cache replays. *)
  let t = Helpers.check_okd "cache replays" (Explore.Cache.load cache) in
  Alcotest.(check bool) "cache persisted the result" true
    (Explore.Cache.size t >= 1);
  Alcotest.(check bool) "journal written" true (Sys.file_exists journal)

(* One worker, a one-deep queue, four distinct hang requests: at least one
   must be shed with a typed serve.overloaded (plus retry hint), at least
   one must reach a worker and die by deadline as serve.deadline — and the
   daemon must survive all of it and still drain cleanly. *)
let serve_sheds_overload_and_kills_hangs () =
  let socket = tmp "ov.sock" in
  rm socket;
  let cfg =
    {
      (Daemon.default ~socket) with
      Daemon.workers = 1;
      queue_limit = 1;
      drain_timeout = 2.;
    }
  in
  let pid = start_daemon cfg in
  Fun.protect ~finally:(fun () -> rm socket) @@ fun () ->
  let c = connect socket in
  (* Distinct weights give distinct content keys — no coalescing. *)
  for i = 1 to 4 do
    Helpers.check_okd "send hang"
      (Client.send c
         (schedule_payload
            ~id:(Printf.sprintf "hang%d" i)
            ~weights:(Printf.sprintf "1/1/1/%d" i)
            ~inject:"hang" ~deadline:1.0 ()))
  done;
  let codes = ref [] in
  let retry_hints = ref 0 in
  for _ = 1 to 4 do
    match Helpers.check_okd "recv" (Client.recv ~timeout:30. c) with
    | Some r ->
        codes := response_code r :: !codes;
        if r.Protocol.r_retry_after <> None then incr retry_hints
    | None -> Alcotest.fail "connection closed before all responses"
  done;
  Client.close c;
  let count code = List.length (List.filter (( = ) code) !codes) in
  let shed = count "serve.overloaded" and killed = count "serve.deadline" in
  Alcotest.(check int)
    (Printf.sprintf "every request answered (%s)" (String.concat "," !codes))
    4 (shed + killed);
  Alcotest.(check bool) "at least one shed" true (shed >= 1);
  Alcotest.(check bool) "at least one deadline kill" true (killed >= 1);
  Alcotest.(check bool) "shed responses carry retry hints" true
    (!retry_hints >= shed);
  (* The daemon is still healthy after the abuse. *)
  let c = connect socket in
  let r = request c (Client.build ~op:"ping" ~id:"alive" []) in
  Alcotest.(check string) "still serving" "ok" (response_code r);
  Client.close c;
  stop_daemon pid

(* kill -9, restart on the same stores: the repeated request must answer
   from the warm cache without re-running. *)
let serve_kill9_restart_serves_warm () =
  let socket = tmp "k9.sock" and cache = tmp "k9-cache.jsonl" in
  List.iter rm [ socket; cache ];
  let cfg =
    { (Daemon.default ~socket) with Daemon.cache_path = Some cache }
  in
  let pid = start_daemon cfg in
  Fun.protect ~finally:(fun () -> List.iter rm [ socket; cache ])
  @@ fun () ->
  let c = connect socket in
  let r1 = request c (schedule_payload ~id:"cold" ()) in
  Alcotest.(check string) "cold run ok" "ok" (response_code r1);
  Alcotest.(check bool) "cold run fresh" false r1.Protocol.r_cached;
  Client.close c;
  (* Crash-only: no shutdown path at all. *)
  Unix.kill pid Sys.sigkill;
  (match wait_exit pid with
  | Unix.WSIGNALED _ -> ()
  | _ -> Alcotest.fail "expected the daemon to die by SIGKILL");
  let pid2 = start_daemon cfg in
  let c = connect socket in
  let r2 = request c (schedule_payload ~id:"warm" ()) in
  Alcotest.(check string) "warm run ok" "ok" (response_code r2);
  Alcotest.(check bool) "restart answered from the warm cache" true
    r2.Protocol.r_cached;
  Client.close c;
  stop_daemon pid2

let suite =
  [
    test "frame: round-trips under any chunking" frame_roundtrip_any_split;
    test "frame: partial frames are visible" frame_partial_is_visible;
    test "frame: oversize refused from the header"
      frame_oversize_refused_from_header;
    test "protocol: schedule requests parse" request_parses;
    test "protocol: rejections are typed" request_errors_are_typed;
    test "protocol: responses round-trip" response_roundtrip;
    test "admission: sheds beyond the limit" admission_sheds_beyond_limit;
    test "daemon: round-trip, cache, half-close, oversize, drain"
      serve_roundtrip_cache_and_drain;
    test "daemon: overload sheds, deadlines kill hangs"
      serve_sheds_overload_and_kills_hangs;
    test "daemon: kill -9 restart serves from the warm cache"
      serve_kill9_restart_serves_warm;
  ]
