(* The shipped sample inputs in examples/data/ stay loadable and
   synthesisable. *)

let test name f = Alcotest.test_case name `Quick f

let data file =
  (* dune copies the declared deps into the sandbox relative to the
     workspace root. *)
  let candidates =
    [ Filename.concat "../examples/data" file;
      Filename.concat "examples/data" file ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> Alcotest.failf "sample %s not found (deps missing?)" file

let diffeq_beh () =
  let g = Helpers.check_okd "compile" (Dfg.Frontend.compile_file (data "diffeq.beh")) in
  Alcotest.(check int) "mults" 6
    (Option.value ~default:0 (List.assoc_opt "*" (Dfg.Graph.count_by_class g)));
  let lib = Celllib.Ncr.for_graph g in
  let o =
    Helpers.check_okd "mfsa"
      (Core.Mfsa.run ~library:lib ~cs:(Dfg.Bounds.critical_path g) g)
  in
  Helpers.check_schedule o.Core.Mfsa.schedule

let fir4_dfg () =
  let g = Helpers.check_okd "parse" (Dfg.Parser.parse_file (data "fir4.dfg")) in
  Alcotest.(check int) "ops" 7 (Dfg.Graph.num_nodes g);
  let env =
    List.mapi (fun i v -> (v, i + 1)) (Dfg.Graph.inputs g)
  in
  let v = Helpers.check_ok "eval" (Sim.Eval.run g env) in
  (* y = 5*1 + 6*2 + 7*3 + 8*4 = 70. *)
  Alcotest.(check (option int)) "y" (Some 70) (Sim.Eval.value v "y")

let cond_beh () =
  let g = Helpers.check_okd "compile" (Dfg.Frontend.compile_file (data "cond.beh")) in
  let consts = Dfg.Frontend.const_env g in
  let run acc x limit =
    let env = [ ("acc", acc); ("x", x); ("limit", limit) ] @ consts in
    let v = Helpers.check_ok "eval" (Sim.Eval.run g env) in
    let id n = (Option.get (Dfg.Graph.find g n)).Dfg.Graph.id in
    if Sim.Eval.active g ~values:v (id "next") then
      Option.get (Sim.Eval.value v "next")
    else Option.get (Sim.Eval.value v "next_else")
  in
  Alcotest.(check int) "saturates" 10 (run 8 5 10);
  Alcotest.(check int) "accumulates" 9 (run 8 1 10)

let suite =
  [
    test "diffeq.beh compiles and synthesises" diffeq_beh;
    test "fir4.dfg parses and evaluates" fir4_dfg;
    test "cond.beh guards behave" cond_beh;
  ]
