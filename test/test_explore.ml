open Explore

let test name f = Alcotest.test_case name `Quick f

let tmp_path name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "mfs-explore-%d-%s" (Unix.getpid ()) name)

let rm path = try Sys.remove path with Sys_error _ -> ()

(* --- Pareto properties -------------------------------------------------- *)

(* Points are their own objective vectors; a small integer-valued value
   universe makes ties and dominance chains frequent. *)
let id_objectives (v : float array) = v

let vec_gen =
  QCheck2.Gen.(array_repeat 3 (map float_of_int (int_bound 4)))

let vecs_gen = QCheck2.Gen.(list_size (int_range 0 25) vec_gen)

let front_vectors l =
  List.sort compare
    (Pareto.members (Pareto.of_list ~objectives:id_objectives l))

let dominance_antisymmetric =
  Helpers.qcheck ~count:300 "dominance is irreflexive and antisymmetric"
    QCheck2.Gen.(pair vec_gen vec_gen)
    (fun (a, b) ->
      let dom = Pareto.dominates ~objectives:id_objectives in
      (not (dom a a)) && not (dom a b && dom b a))

let front_minimal =
  Helpers.qcheck ~count:300 "front members never dominate each other"
    vecs_gen
    (fun l ->
      let front = front_vectors l in
      let dom = Pareto.dominates ~objectives:id_objectives in
      List.for_all
        (fun a -> List.for_all (fun b -> not (dom a b)) front)
        front)

let front_complete =
  Helpers.qcheck ~count:300
    "every point is on the front or dominated by a member" vecs_gen
    (fun l ->
      let t = Pareto.of_list ~objectives:id_objectives l in
      let dom = Pareto.dominates ~objectives:id_objectives in
      List.for_all
        (fun x ->
          Pareto.mem t x
          || List.exists (fun m -> dom m x) (Pareto.members t))
        l)

let front_order_independent =
  Helpers.qcheck ~count:300 "front is independent of insertion order"
    vecs_gen
    (fun l ->
      let rotated = match l with [] -> [] | x :: rest -> rest @ [ x ] in
      front_vectors l = front_vectors (List.rev l)
      && front_vectors l = front_vectors rotated)

let dominates_arity () =
  match
    Pareto.dominates ~objectives:id_objectives [| 1. |] [| 1.; 2. |]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "arity mismatch accepted"

(* --- Config canonicalization (satellite: stable option hashing) --------- *)

let test_config () =
  Core.Config.of_library (Celllib.Ncr.for_graph (Workloads.Classic.diffeq ()))

let is_hex s =
  String.length s = 32
  && String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) s

let canonical_fields s =
  List.filter_map
    (fun part ->
      match String.index_opt part '=' with
      | Some i -> Some (String.sub part 0 i)
      | None -> None)
    (String.split_on_char ';' s)

let config_canonical_sorted () =
  let c = canonical_fields (Core.Config.canonical (test_config ())) in
  Alcotest.(check (list string))
    "field names, sorted"
    [ "chaining"; "delays"; "functional_latency"; "mem_ports"; "node_delay";
      "pipelined"; "share_mutex" ]
    c

let config_hash_stable () =
  let a = test_config () and b = test_config () in
  Alcotest.(check string) "same inputs, same hash" (Core.Config.hash a)
    (Core.Config.hash b);
  Alcotest.(check bool) "hex digest" true (is_hex (Core.Config.hash a))

let config_hash_sensitive () =
  let c = test_config () in
  let flipped = { c with Core.Config.share_mutex = not c.Core.Config.share_mutex } in
  Alcotest.(check bool) "share_mutex flip changes the hash" false
    (Core.Config.hash c = Core.Config.hash flipped);
  let chained =
    { c with
      Core.Config.chaining =
        Some { Core.Config.prop_delay = (fun _ -> 40.0); clock = 100.0 } }
  in
  Alcotest.(check bool) "chaining changes the hash" false
    (Core.Config.hash c = Core.Config.hash chained)

(* --- Spec parsing -------------------------------------------------------- *)

let spec_text =
  "# a comment\n\
   graph ewf\n\
   engine mfsa mfs\n\
   style 1 2\n\
   weights 1/1/1/1 1/1/1/20\n\
   cs 17 19\n\
   limits *=1,+=2\n\
   library default two-cycle\n\
   clock 100\n\
   budget 4\n\
   inject hang 3\n"

let spec_parses () =
  match Spec.parse ~file:"test.spec" spec_text with
  | Error d -> Alcotest.failf "parse failed: %s" (Diag.to_string d)
  | Ok s ->
      Alcotest.(check string) "graph" "ewf" s.Spec.graph;
      Alcotest.(check int) "engines" 2 (List.length s.Spec.engines);
      Alcotest.(check int) "styles" 2 (List.length s.Spec.styles);
      Alcotest.(check int) "weights" 2 (List.length s.Spec.weights);
      Alcotest.(check int) "constraints" 3 (List.length s.Spec.constraints);
      Alcotest.(check int) "libraries" 2 (List.length s.Spec.libraries);
      Alcotest.(check (option (float 0.001))) "clock" (Some 100.0) s.Spec.clock;
      Alcotest.(check int) "budget" 4 s.Spec.budget;
      Alcotest.(check bool) "inject" true
        (s.Spec.inject = [ (3, Harness.Fault.Hang) ])

let spec_defaults () =
  match Spec.parse ~file:"t" "graph diffeq\n" with
  | Error d -> Alcotest.failf "parse failed: %s" (Diag.to_string d)
  | Ok s ->
      Alcotest.(check bool) "defaults" true
        (s.Spec.engines = [ Spec.Mfsa ]
        && s.Spec.styles = [ Core.Mfsa.Unrestricted ]
        && s.Spec.weights = [ Core.Mfsa.equal_weights ]
        && s.Spec.constraints = [ Spec.Time 0 ]
        && s.Spec.libraries = [ Spec.Default ]
        && s.Spec.budget = 0)

let spec_error code text =
  match Spec.parse ~file:"t" text with
  | Ok _ -> Alcotest.failf "accepted: %s" (String.escaped text)
  | Error (d : Diag.t) ->
      Alcotest.(check string) "code" code d.Diag.code;
      Alcotest.(check int) "input exit" 3 (Diag.exit_code d)

let spec_rejects () =
  spec_error "explore.spec" "graph ewf\nweights 1/1/1\n";
  spec_error "explore.spec" "graph ewf\nweights 1/1/1/-2\n";
  spec_error "explore.spec" "graph ewf\nfrobnicate 3\n";
  spec_error "explore.spec" "graph ewf\ninject corrupt-start 0\n";
  spec_error "explore.spec" "graph ewf\ncs seventeen\n";
  spec_error "explore.spec" "engine mfsa\n" (* no graph *)

(* --- Lattice ------------------------------------------------------------- *)

let spec_of_text text =
  Helpers.check_okd "spec" (Spec.parse ~file:"t" text)

let expand_dedups_non_mfsa () =
  (* Style and weights only steer MFSA: for mfs the 2x2 style/weight block
     collapses to one point per constraint. *)
  let s = spec_of_text "graph diffeq\nengine mfs\nstyle 1 2\nweights 1/1/1/1 1/1/1/20\ncs 4 6\n" in
  let points = Lattice.expand s in
  Alcotest.(check int) "two points" 2 (List.length points);
  List.iteri
    (fun i (p : Lattice.point) ->
      Alcotest.(check int) "contiguous indices" i p.Lattice.index)
    points

let expand_attaches_faults () =
  let s = spec_of_text "graph diffeq\ncs 4 6\ninject segv 1\n" in
  match Lattice.expand s with
  | [ p0; p1 ] ->
      Alcotest.(check bool) "p0 clean" true (p0.Lattice.fault = None);
      Alcotest.(check bool) "p1 segv" true
        (p1.Lattice.fault = Some Harness.Fault.Segv)
  | l -> Alcotest.failf "expected 2 points, got %d" (List.length l)

let keys_content_addressed () =
  let g = Workloads.Classic.diffeq () in
  let s = spec_of_text "graph diffeq\nstyle 1 2\ncs 4\n" in
  match Lattice.expand s with
  | [ p1; p2 ] ->
      Alcotest.(check bool) "hex key" true (is_hex (Lattice.key ~graph:g p1));
      Alcotest.(check string) "key is deterministic"
        (Lattice.key ~graph:g p1) (Lattice.key ~graph:g p1);
      Alcotest.(check bool) "style changes the key" false
        (Lattice.key ~graph:g p1 = Lattice.key ~graph:g p2);
      (* The index is bookkeeping, not content. *)
      Alcotest.(check string) "index does not change the key"
        (Lattice.key ~graph:g p1)
        (Lattice.key ~graph:g { p1 with Lattice.index = 99 })
  | l -> Alcotest.failf "expected 2 points, got %d" (List.length l)

let evaluate_solves_diffeq () =
  let g = Workloads.Classic.diffeq () in
  let s = spec_of_text "graph diffeq\ncs 4\n" in
  let p = List.hd (Lattice.expand s) in
  let m = Helpers.check_okd "evaluate" (Lattice.evaluate ~graph:g p) in
  Alcotest.(check int) "csteps" 4 m.Lattice.m_csteps;
  Alcotest.(check bool) "has units" true (m.Lattice.m_units > 0);
  Alcotest.(check bool) "alu area positive" true (m.Lattice.m_alu > 0.);
  Alcotest.(check bool) "total covers alu+mux" true
    (m.Lattice.m_total >= m.Lattice.m_alu +. m.Lattice.m_mux)

let evaluate_reports_infeasible () =
  let g = Workloads.Classic.diffeq () in
  let s = spec_of_text "graph diffeq\nengine list\ncs 1\n" in
  let p = List.hd (Lattice.expand s) in
  let d = Helpers.check_errd "evaluate" (Lattice.evaluate ~graph:g p) in
  Alcotest.(check int) "infeasible exit" 4 (Diag.exit_code d)

(* --- Cache --------------------------------------------------------------- *)

let sample_metrics =
  {
    Lattice.m_csteps = 17; m_units = 3; m_alu = 16890.0; m_mux = 6700.0;
    m_reg = 26; m_total = 40490.0; m_seconds = 0.015;
  }

let entry_roundtrip () =
  List.iter
    (fun e ->
      match
        Result.bind
          (Batch.Jsonl.parse (Cache.entry_to_json e))
          Cache.entry_of_json
      with
      | Error msg -> Alcotest.failf "round-trip failed: %s" msg
      | Ok e' -> Alcotest.(check bool) "round-trips" true (e = e'))
    [
      { Cache.key = "k1"; descr = "mfsa T=17";
        outcome = Cache.Metrics sample_metrics };
      { Cache.key = "k2"; descr = "mfsa T=2";
        outcome = Cache.Infeasible "mfsa.no-schedule" };
    ]

let cache_store_roundtrip () =
  let path = tmp_path "cache.jsonl" in
  rm path;
  let w = Cache.open_writer path in
  Helpers.check_okd "append" (Cache.append w
    { Cache.key = "a"; descr = "p0"; outcome = Cache.Metrics sample_metrics });
  Helpers.check_okd "append" (Cache.append w
    { Cache.key = "b"; descr = "p1"; outcome = Cache.Infeasible "x.y" });
  (* Duplicate key: the later entry must win on load. *)
  Helpers.check_okd "append" (Cache.append w
    { Cache.key = "b"; descr = "p1-later"; outcome = Cache.Infeasible "x.z" });
  Cache.close w;
  let t = Helpers.check_okd "load" (Cache.load path) in
  Alcotest.(check int) "two keys" 2 (Cache.size t);
  (match Cache.find t "a" with
  | Some { Cache.outcome = Cache.Metrics m; _ } ->
      Alcotest.(check bool) "metrics survive" true (m = sample_metrics)
  | _ -> Alcotest.fail "key a missing or wrong outcome");
  (match Cache.find t "b" with
  | Some { Cache.descr = "p1-later"; outcome = Cache.Infeasible "x.z"; _ } -> ()
  | _ -> Alcotest.fail "later duplicate did not win");
  rm path

let cache_tolerates_torn_tail () =
  let path = tmp_path "torn.jsonl" in
  let oc = open_out path in
  output_string oc
    (Cache.entry_to_json
       { Cache.key = "a"; descr = "p0"; outcome = Cache.Infeasible "c" }
    ^ "\n{\"key\":\"b\",\"descr\":");
  close_out oc;
  let t = Helpers.check_okd "load" (Cache.load path) in
  Alcotest.(check int) "torn tail dropped" 1 (Cache.size t);
  rm path

let cache_rejects_garbage () =
  let path = tmp_path "garbage.jsonl" in
  let oc = open_out path in
  output_string oc "{\"not\":\"an entry\"}\n{\"x\":1}\n";
  close_out oc;
  (match Cache.load path with
  | Ok _ -> Alcotest.fail "garbage cache accepted"
  | Error (d : Diag.t) ->
      Alcotest.(check string) "code" "explore.cache" d.Diag.code);
  rm path

let cache_missing_is_empty () =
  let t = Helpers.check_okd "load" (Cache.load (tmp_path "nonexistent")) in
  Alcotest.(check int) "empty" 0 (Cache.size t)

(* --- Cache admission control (LRU cap, pins, counters) ------------------- *)

let mini_entry key =
  { Cache.key; descr = "d:" ^ key; outcome = Cache.Infeasible "x.y" }

let cache_lru_evicts_least_recent () =
  let t = Cache.empty ~max_entries:2 () in
  Cache.insert t (mini_entry "a");
  Cache.insert t (mini_entry "b");
  (* Touch "a" so "b" becomes the least recently used. *)
  ignore (Cache.find t "a");
  Cache.insert t (mini_entry "c");
  Alcotest.(check bool) "a survives (recently touched)" true
    (Cache.peek t "a" <> None);
  Alcotest.(check bool) "b evicted (least recent)" true
    (Cache.peek t "b" = None);
  Alcotest.(check bool) "c resident" true (Cache.peek t "c" <> None);
  let s = Cache.stats t in
  Alcotest.(check int) "entries at cap" 2 s.Cache.entries;
  Alcotest.(check int) "one eviction" 1 s.Cache.evictions

let cache_counts_hits_and_misses () =
  let t = Cache.empty () in
  Cache.insert t (mini_entry "a");
  ignore (Cache.find t "a");
  ignore (Cache.find t "a");
  ignore (Cache.find t "absent");
  ignore (Cache.peek t "absent");
  (* peek is silent *)
  let s = Cache.stats t in
  Alcotest.(check int) "hits" 2 s.Cache.hits;
  Alcotest.(check int) "misses" 1 s.Cache.misses;
  Alcotest.(check int) "no evictions unbounded" 0 s.Cache.evictions

let cache_pins_shield_in_flight_keys () =
  let t = Cache.empty ~max_entries:1 () in
  Cache.pin t "a";
  Cache.pin t "b";
  Cache.insert t (mini_entry "a");
  Cache.insert t (mini_entry "b");
  (* Every resident key pinned: the cap is soft, nothing is evicted. *)
  Alcotest.(check int) "soft cap holds both" 2 (Cache.size t);
  Alcotest.(check int) "no evictions while pinned" 0
    (Cache.stats t).Cache.evictions;
  Cache.unpin t "a";
  Cache.insert t (mini_entry "c");
  Alcotest.(check bool) "unpinned a now evictable" true
    (Cache.peek t "a" = None);
  Alcotest.(check bool) "pinned b survives" true (Cache.peek t "b" <> None);
  (* Refcounting: double pin needs double unpin. *)
  Cache.pin t "b";
  Cache.unpin t "b";
  Alcotest.(check bool) "still pinned after one unpin" true (Cache.pinned t "b");
  Cache.unpin t "b";
  Alcotest.(check bool) "fully unpinned" false (Cache.pinned t "b")

let cache_load_respects_cap () =
  let path = tmp_path "capped-cache.jsonl" in
  rm path;
  let w = Cache.open_writer path in
  List.iter
    (fun k -> Helpers.check_okd "append" (Cache.append w (mini_entry k)))
    [ "a"; "b"; "c" ];
  Cache.close w;
  let t = Helpers.check_okd "load" (Cache.load ~max_entries:2 path) in
  Alcotest.(check int) "only the cap survives replay" 2 (Cache.size t);
  Alcotest.(check bool) "oldest dropped" true (Cache.peek t "a" = None);
  Alcotest.(check bool) "recent kept" true
    (Cache.peek t "b" <> None && Cache.peek t "c" <> None);
  let s = Cache.stats t in
  Alcotest.(check (list int)) "replay is history, not traffic" [ 0; 0 ]
    [ s.Cache.hits; s.Cache.misses ];
  rm path

(* Two processes appending to one cache file concurrently — the daemon's
   shared-store discipline (O_APPEND, one write per whole line) must leave
   no torn or interleaved lines for the reader. *)
let cache_concurrent_writers_no_torn_lines () =
  let path = tmp_path "shared-cache.jsonl" in
  rm path;
  let per_child = 50 in
  let child tag =
    match Unix.fork () with
    | 0 ->
        let w = Cache.open_writer path in
        for i = 0 to per_child - 1 do
          let e =
            {
              Cache.key = Printf.sprintf "%s-%03d" tag i;
              descr = String.make 120 tag.[0];
              outcome = Cache.Infeasible "mfsa.no-schedule";
            }
          in
          match Cache.append w e with
          | Ok () -> ()
          | Error _ -> Unix._exit 1
        done;
        Cache.close w;
        Unix._exit 0
    | pid -> pid
  in
  let pids = [ child "a"; child "b" ] in
  List.iter
    (fun pid ->
      match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _ -> Alcotest.fail "cache writer child failed")
    pids;
  let t = Helpers.check_okd "load survives concurrency" (Cache.load path) in
  Alcotest.(check int) "every line intact and distinct" (2 * per_child)
    (Cache.size t);
  rm path

(* --- Refine -------------------------------------------------------------- *)

let mk_point index weights =
  let s = spec_of_text "graph diffeq\ncs 4\n" in
  { (List.hd (Lattice.expand s)) with Lattice.index; weights }

let w a b c d = { Core.Mfsa.w_time = a; w_alu = b; w_mux = c; w_reg = d }

let mid_weights_mean () =
  let m = Refine.mid_weights (w 1. 1. 1. 1.) (w 1. 3. 1. 20.) in
  Alcotest.(check bool) "component-wise mean" true (m = w 1. 2. 1. 10.5)

let metrics_with csteps total =
  { sample_metrics with Lattice.m_csteps = csteps; m_total = total }

let bisect_respects_budget () =
  let g = Workloads.Classic.diffeq () in
  let front =
    [
      (mk_point 0 (w 1. 1. 1. 1.), metrics_with 4 40000.);
      (mk_point 1 (w 1. 1. 1. 20.), metrics_with 6 30000.);
      (mk_point 2 (w 1. 5. 1. 1.), metrics_with 8 20000.);
    ]
  in
  let seen _ = false in
  Alcotest.(check int) "budget 0" 0
    (List.length (Refine.bisect ~front ~seen ~graph:g ~next_index:3 ~budget:0));
  let one = Refine.bisect ~front ~seen ~graph:g ~next_index:3 ~budget:1 in
  Alcotest.(check int) "budget 1" 1 (List.length one);
  let cands = Refine.bisect ~front ~seen ~graph:g ~next_index:3 ~budget:10 in
  Alcotest.(check bool) "bounded by pairs" true (List.length cands <= 4);
  List.iteri
    (fun i (p : Lattice.point) ->
      Alcotest.(check int) "indices continue" (3 + i) p.Lattice.index;
      Alcotest.(check bool) "no fault" true (p.Lattice.fault = None))
    cands;
  (* Everything already seen: nothing proposed. *)
  Alcotest.(check int) "saturated" 0
    (List.length
       (Refine.bisect ~front ~seen:(fun _ -> true) ~graph:g ~next_index:3
          ~budget:10))

(* --- Engine: sweep, cache warm-up, acceptance ---------------------------- *)

let count_status o =
  List.fold_left
    (fun (s, i, f) (e : Engine.eval) ->
      match e.Engine.e_status with
      | Engine.Solved _ -> (s + 1, i, f)
      | Engine.Infeasible _ -> (s, i + 1, f)
      | Engine.Failed _ -> (s, i, f + 1))
    (0, 0, 0) o.Engine.evals

let tiny_sweep_then_warm_cache () =
  let cache = tmp_path "sweep-cache.jsonl" in
  rm cache;
  let spec = spec_of_text "graph diffeq\ncs 4 6\nweights 1/1/1/1 1/1/1/20\n" in
  let o = Helpers.check_okd "run" (Engine.run ~cache ~deadline:30. spec) in
  Alcotest.(check int) "seed points" 4 o.Engine.seed_points;
  Alcotest.(check int) "cold cache" 0 o.Engine.cache_hits;
  Alcotest.(check int) "all fresh" 4 o.Engine.fresh;
  let s, i, f = count_status o in
  Alcotest.(check (list int)) "all solved" [ 4; 0; 0 ] [ s; i; f ];
  Alcotest.(check bool) "front non-empty" true (Engine.front o <> []);
  (* Second run: every point replayed from the cache, zero evaluations. *)
  let o2 = Helpers.check_okd "rerun" (Engine.run ~cache ~deadline:30. spec) in
  Alcotest.(check int) "warm cache hits all" 4 o2.Engine.cache_hits;
  Alcotest.(check int) "zero fresh" 0 o2.Engine.fresh;
  Alcotest.(check bool) "same front" true
    (List.map snd (Engine.front o2) = List.map snd (Engine.front o));
  List.iter
    (fun (e : Engine.eval) ->
      Alcotest.(check bool) "sourced from cache" true
        (e.Engine.e_source = Engine.Cached))
    o2.Engine.evals;
  rm cache

let infeasible_points_are_cached () =
  let cache = tmp_path "infeasible-cache.jsonl" in
  rm cache;
  (* cs 2 is below diffeq's critical path: an expected infeasibility. *)
  let spec = spec_of_text "graph diffeq\nengine list\ncs 2 4\n" in
  let o = Helpers.check_okd "run" (Engine.run ~cache ~deadline:30. spec) in
  let s, i, f = count_status o in
  Alcotest.(check (list int)) "one solved, one infeasible" [ 1; 1; 0 ]
    [ s; i; f ];
  let o2 = Helpers.check_okd "rerun" (Engine.run ~cache ~deadline:30. spec) in
  Alcotest.(check int) "infeasible hit too" 2 o2.Engine.cache_hits;
  Alcotest.(check int) "zero fresh" 0 o2.Engine.fresh;
  rm cache

let refinement_densifies () =
  let cache = tmp_path "refine-cache.jsonl" in
  rm cache;
  let spec =
    spec_of_text
      "graph diffeq\nweights 1/1/1/1 1/8/1/1 1/1/1/20\ncs 4 6\nbudget 3\n"
  in
  let o = Helpers.check_okd "run" (Engine.run ~cache ~deadline:30. spec) in
  Alcotest.(check bool) "refined within budget" true
    (o.Engine.refined_points <= 3);
  Alcotest.(check int) "evals cover seed + refined"
    (o.Engine.seed_points + o.Engine.refined_points)
    (List.length o.Engine.evals);
  rm cache

(* The issue's acceptance bar: an elliptic-filter sweep spanning time- and
   resource-constrained regimes yields at least 4 non-dominated points
   with distinct objective vectors. *)
let ewf_front_spans_regimes () =
  let spec =
    spec_of_text
      "graph ewf\ncs 17 28\nlimits *=1,+=1 *=2,+=2 *=3,+=3\n"
  in
  let o =
    Helpers.check_okd "run" (Engine.run ~workers:2 ~deadline:60. spec)
  in
  let front = Engine.front o in
  let distinct =
    List.sort_uniq compare
      (List.map
         (fun (_, (m : Lattice.metrics)) ->
           (m.Lattice.m_csteps, m.Lattice.m_alu))
         front)
  in
  Alcotest.(check bool)
    (Printf.sprintf "%d distinct (csteps, ALU) front points >= 4"
       (List.length distinct))
    true
    (List.length distinct >= 4);
  let time_pts, resource_pts =
    List.partition
      (fun ((p : Lattice.point), _) ->
        match p.Lattice.constr with Spec.Time _ -> true | Spec.Resource _ -> false)
      front
  in
  Alcotest.(check bool) "both regimes on the front" true
    (time_pts <> [] && resource_pts <> [])

(* --- Front_report -------------------------------------------------------- *)

let report_renders () =
  let spec = spec_of_text "graph diffeq\ncs 4 6\n" in
  let o = Helpers.check_okd "run" (Engine.run ~deadline:30. spec) in
  let table = Front_report.table o in
  Alcotest.(check bool) "table has the header" true
    (Helpers.contains ~sub:"csteps" table);
  Alcotest.(check bool) "table counts the front" true
    (Helpers.contains ~sub:"non-dominated of" table);
  let csv = Front_report.csv o in
  Alcotest.(check int) "csv rows = header + evals"
    (1 + List.length o.Engine.evals)
    (List.length
       (List.filter (fun l -> l <> "") (String.split_on_char '\n' csv)));
  let dot = Front_report.dot o in
  Alcotest.(check bool) "dot wrapper" true
    (Helpers.contains ~sub:"digraph front" dot);
  match Batch.Jsonl.parse (Front_report.json o) with
  | Error e -> Alcotest.failf "json invalid: %s" e
  | Ok doc ->
      Alcotest.(check (option int)) "json seed count" (Some 2)
        (Batch.Jsonl.int "seed_points" doc)

(* --- Report.Table.to_csv (satellite) ------------------------------------- *)

let csv_quoting () =
  let out =
    Report.Table.to_csv
      ~header:[ "a"; "b" ]
      [ [ "plain"; "with,comma" ]; [ "with \"quote\""; "line\nbreak" ] ]
  in
  Alcotest.(check string) "RFC-4180 quoting"
    "a,b\nplain,\"with,comma\"\n\"with \"\"quote\"\"\",\"line\nbreak\"\n"
    out;
  Alcotest.(check string) "no header" "x,y\n"
    (Report.Table.to_csv [ [ "x"; "y" ] ])

let suite =
  [
    dominance_antisymmetric;
    front_minimal;
    front_complete;
    front_order_independent;
    test "dominates rejects arity mismatches" dominates_arity;
    test "Config.canonical sorts its fields" config_canonical_sorted;
    test "Config.hash is stable" config_hash_stable;
    test "Config.hash tracks option changes" config_hash_sensitive;
    test "spec: full file parses" spec_parses;
    test "spec: unset axes collapse to defaults" spec_defaults;
    test "spec: malformed lines are explore.spec errors" spec_rejects;
    test "lattice: non-MFSA points deduplicate" expand_dedups_non_mfsa;
    test "lattice: inject attaches by index" expand_attaches_faults;
    test "lattice: keys are content-addressed" keys_content_addressed;
    test "lattice: evaluate solves diffeq" evaluate_solves_diffeq;
    test "lattice: evaluate reports infeasibility" evaluate_reports_infeasible;
    test "cache: entries round-trip" entry_roundtrip;
    test "cache: store round-trips, later entries win" cache_store_roundtrip;
    test "cache: torn trailing line dropped" cache_tolerates_torn_tail;
    test "cache: garbage is an explore.cache error" cache_rejects_garbage;
    test "cache: missing file is empty" cache_missing_is_empty;
    test "cache: LRU cap evicts the least recent" cache_lru_evicts_least_recent;
    test "cache: hit/miss counters" cache_counts_hits_and_misses;
    test "cache: pinned keys never evicted" cache_pins_shield_in_flight_keys;
    test "cache: load respects the resident cap" cache_load_respects_cap;
    test "cache: concurrent writers leave no torn lines"
      cache_concurrent_writers_no_torn_lines;
    test "refine: midpoint weights are means" mid_weights_mean;
    test "refine: budget and indices respected" bisect_respects_budget;
    test "engine: sweep then warm cache evaluates zero" tiny_sweep_then_warm_cache;
    test "engine: infeasible points are cached" infeasible_points_are_cached;
    test "engine: refinement stays within budget" refinement_densifies;
    test "engine: ewf front spans both regimes" ewf_front_spans_regimes;
    test "report: table, csv, dot and json render" report_renders;
    test "table: to_csv quotes per RFC 4180" csv_quoting;
  ]
