let test name f = Alcotest.test_case name `Quick f

let rect_gen =
  QCheck2.Gen.map
    (fun (a, b, c, d) ->
      { Core.Frames.col_lo = a; col_hi = b; step_lo = c; step_hi = d })
    QCheck2.Gen.(quad (int_range 1 6) (int_range 0 8) (int_range 1 6) (int_range 0 8))

let basics () =
  let r = { Core.Frames.col_lo = 1; col_hi = 2; step_lo = 3; step_hi = 4 } in
  Alcotest.(check bool) "not empty" false (Core.Frames.rect_is_empty r);
  Alcotest.(check int) "4 positions" 4 (List.length (Core.Frames.rect_positions r));
  Alcotest.(check bool) "member" true
    (Core.Frames.rect_mem r { Core.Frames.col = 2; step = 3 });
  Alcotest.(check bool) "non-member" false
    (Core.Frames.rect_mem r { Core.Frames.col = 3; step = 3 })

let empty_rect () =
  Alcotest.(check bool) "empty" true (Core.Frames.rect_is_empty Core.Frames.empty_rect);
  Alcotest.(check int) "no positions" 0
    (List.length (Core.Frames.rect_positions Core.Frames.empty_rect))

let primary_redundant () =
  let pf = Core.Frames.primary ~step_lo:2 ~step_hi:4 ~max_cols:3 in
  Alcotest.(check int) "pf size" 9 (List.length (Core.Frames.rect_positions pf));
  let rf = Core.Frames.redundant ~current:2 ~max_cols:3 ~step_lo:2 ~step_hi:4 in
  Alcotest.(check int) "rf covers col 3 only" 3
    (List.length (Core.Frames.rect_positions rf));
  let rf_full = Core.Frames.redundant ~current:3 ~max_cols:3 ~step_lo:2 ~step_hi:4 in
  Alcotest.(check bool) "rf empty when current = max" true
    (Core.Frames.rect_is_empty rf_full)

let move_frame_example () =
  (* Paper Fig. 2: r has preds finishing at step 2, current_j = 2, max 4. *)
  let pf = Core.Frames.primary ~step_lo:1 ~step_hi:6 ~max_cols:4 in
  let rf = Core.Frames.redundant ~current:2 ~max_cols:4 ~step_lo:1 ~step_hi:6 in
  let forbidden s = s <= 2 in
  let mf = Core.Frames.move_frame_set ~pf ~rf ~forbidden in
  Alcotest.(check int) "2 cols x 4 steps" 8 (List.length mf);
  List.iter
    (fun p ->
      Alcotest.(check bool) "col within current" true (p.Core.Frames.col <= 2);
      Alcotest.(check bool) "step after preds" true (p.Core.Frames.step > 2))
    mf

let occupancy_filter () =
  let pf = Core.Frames.primary ~step_lo:1 ~step_hi:2 ~max_cols:2 in
  let rf = Core.Frames.empty_rect in
  let busy = { Core.Frames.col = 1; step = 1 } in
  let mf =
    Core.Frames.move_frame ~pf ~rf
      ~forbidden:(fun _ -> false)
      ~free:(fun p -> p <> busy)
  in
  Alcotest.(check int) "3 free" 3 (List.length mf);
  Alcotest.(check bool) "busy excluded" false (List.mem busy mf)

let set_identity =
  Helpers.qcheck ~count:200 "MF = PF - (RF + FF) as a set identity"
    QCheck2.Gen.(triple rect_gen rect_gen (int_range 0 8))
    (fun (pf, rf, fcut) ->
      let forbidden s = s <= fcut in
      let mf = Core.Frames.move_frame_set ~pf ~rf ~forbidden in
      let brute =
        List.filter
          (fun p ->
            not (Core.Frames.rect_mem rf p || forbidden p.Core.Frames.step))
          (Core.Frames.rect_positions pf)
      in
      mf = brute)

let mf_subset_of_pf =
  Helpers.qcheck ~count:200 "MF is inside PF and outside RF"
    QCheck2.Gen.(pair rect_gen rect_gen)
    (fun (pf, rf) ->
      let mf = Core.Frames.move_frame_set ~pf ~rf ~forbidden:(fun _ -> false) in
      List.for_all
        (fun p ->
          Core.Frames.rect_mem pf p && not (Core.Frames.rect_mem rf p))
        mf)

let rect_seq_matches_list =
  Helpers.qcheck ~count:200 "rect_seq Row_major enumerates rect_positions"
    rect_gen
    (fun r -> List.of_seq (Core.Frames.rect_seq r) = Core.Frames.rect_positions r)

let rect_seq_rev_reverses =
  Helpers.qcheck ~count:200 "rect_seq ~rev walks the same order backwards"
    rect_gen
    (fun r ->
      List.of_seq (Core.Frames.rect_seq ~rev:true r)
      = List.rev (List.of_seq (Core.Frames.rect_seq r))
      && List.of_seq
           (Core.Frames.rect_seq ~scan:Core.Frames.Col_major ~rev:true r)
         = List.rev
             (List.of_seq (Core.Frames.rect_seq ~scan:Core.Frames.Col_major r)))

let scan_orders_same_set =
  Helpers.qcheck ~count:200 "both scan orders cover the same positions"
    rect_gen
    (fun r ->
      let sort = List.sort compare in
      sort (List.of_seq (Core.Frames.rect_seq ~scan:Core.Frames.Col_major r))
      = sort (List.of_seq (Core.Frames.rect_seq r)))

let nondecreasing value ps =
  let rec go = function
    | a :: (b :: _ as rest) -> value a <= value b && go rest
    | _ -> true
  in
  go ps

let scan_energy_monotone =
  (* The property best_lazy relies on: the scan order chosen for each
     objective enumerates positions in nondecreasing energy. *)
  Helpers.qcheck ~count:200 "scan order is nondecreasing in Liapunov energy"
    rect_gen
    (fun r ->
      let time = Core.Liapunov.Time_constrained { n = 8 } in
      let res = Core.Liapunov.Resource_constrained { cs = 12 } in
      nondecreasing (Core.Liapunov.value time)
        (List.of_seq (Core.Frames.rect_seq ~scan:(Core.Liapunov.scan time) r))
      && nondecreasing (Core.Liapunov.value res)
           (List.of_seq (Core.Frames.rect_seq ~scan:(Core.Liapunov.scan res) r)))

let move_frame_seq_agrees =
  Helpers.qcheck ~count:200 "move_frame_seq enumerates move_frame_set"
    QCheck2.Gen.(triple rect_gen rect_gen (int_range 0 8))
    (fun (pf, rf, fcut) ->
      let forbidden s = s <= fcut in
      List.of_seq (Core.Frames.move_frame_seq ~pf ~rf ~forbidden ())
      = Core.Frames.move_frame_set ~pf ~rf ~forbidden)

let suite =
  [
    test "rect basics" basics;
    test "empty rect" empty_rect;
    test "primary and redundant frames" primary_redundant;
    test "move frame of the paper's Fig. 2 example" move_frame_example;
    test "occupied positions filtered" occupancy_filter;
    set_identity;
    mf_subset_of_pf;
    rect_seq_matches_list;
    rect_seq_rev_reverses;
    scan_orders_same_set;
    scan_energy_monotone;
    move_frame_seq_agrees;
  ]
