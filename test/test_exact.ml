let test name f = Alcotest.test_case name `Quick f

let diffeq_optimum () =
  let g = Workloads.Classic.diffeq () in
  let o = Helpers.check_ok "exact" (Baselines.Exact.run g ~cs:4) in
  Helpers.check_schedule o.Baselines.Exact.schedule;
  (* The proven optimum matches the literature: 2* + 1+ + 1- + 1< = 5. *)
  Alcotest.(check (float 1e-9)) "optimum 5 units" 5. o.Baselines.Exact.optimum;
  Alcotest.(check bool) "proven" true o.Baselines.Exact.proven;
  Alcotest.(check bool) "searched more than one node" true
    (o.Baselines.Exact.explored > 10)

let tseng_optimum () =
  let v = Helpers.check_ok "exact" (Baselines.Exact.min_units (Workloads.Classic.tseng ()) ~cs:4) in
  Alcotest.(check int) "7 units at T=4" 7 v;
  let v5 = Helpers.check_ok "exact" (Baselines.Exact.min_units (Workloads.Classic.tseng ()) ~cs:5) in
  Alcotest.(check int) "6 units at T=5" 6 v5

let chain_trivial () =
  let o = Helpers.check_ok "exact" (Baselines.Exact.run (Helpers.chain4 ()) ~cs:4) in
  Alcotest.(check (float 1e-9)) "serial chain needs one adder" 1.
    o.Baselines.Exact.optimum

let weighted_objective () =
  (* Weighting multipliers heavily does not change diffeq's unit optimum
     (2 multipliers are forced), but the objective scales accordingly. *)
  let g = Workloads.Classic.diffeq () in
  let weight c = if c = "*" then 10. else 1. in
  let o =
    Helpers.check_ok "exact" (Baselines.Exact.run ~unit_weight:weight g ~cs:4)
  in
  Alcotest.(check (float 1e-9)) "2*10 + 3" 23. o.Baselines.Exact.optimum

let multicycle_exact () =
  let config =
    { Core.Config.default with
      Core.Config.delays = (function Dfg.Op.Mul -> 2 | _ -> 1) }
  in
  let g = Helpers.diamond () in
  let o = Helpers.check_ok "exact" (Baselines.Exact.run ~config g ~cs:4) in
  Helpers.check_schedule o.Baselines.Exact.schedule;
  (* Two 2-cycle mults fit serially on one unit in 4 steps (1-2 and 3-4)…
     but the add then exceeds the horizon, so 2 units + 1 adder. *)
  Alcotest.(check (float 1e-9)) "optimum" 3. o.Baselines.Exact.optimum

let budget_guard () =
  let g =
    Workloads.Random_dag.generate_exn
      ~spec:{ Workloads.Random_dag.default with Workloads.Random_dag.ops = 40 }
      ~seed:3 ()
  in
  let cs = Dfg.Bounds.critical_path g + 3 in
  match Baselines.Exact.run ~node_budget:500 g ~cs with
  | Error msg ->
      Alcotest.(check bool) "budget error" true
        (Helpers.contains ~sub:"budget" msg)
  | Ok o ->
      (* A tiny budget may still finish if pruning is sharp; then the
         result must at least be a valid schedule. *)
      Helpers.check_schedule o.Baselines.Exact.schedule

let infeasible () =
  ignore
    (Helpers.check_err "cs too small"
       (Baselines.Exact.run (Helpers.chain4 ()) ~cs:3))

(* Heuristic-quality property: unlike the hard invariants, the optimality
   gap is distributional, so this runs over fixed seeds rather than a
   random qcheck draw (a rare seed with gap 2 would make CI flaky). *)
let mfs_gap_bounded () =
  let gaps =
    List.map
      (fun seed ->
        let g =
          Workloads.Random_dag.generate_exn
            ~spec:
              { Workloads.Random_dag.default with Workloads.Random_dag.ops = 10 }
            ~seed ()
        in
        let cs = Dfg.Bounds.critical_path g + 1 in
        match
          ( Baselines.Exact.min_units g ~cs,
            Core.Mfs.schedule g (Core.Mfs.Time { cs }) )
        with
        | Ok opt, Ok s ->
            let total =
              List.fold_left (fun a (_, k) -> a + k) 0 (Core.Schedule.fu_counts s)
            in
            total - opt
        | _ -> Alcotest.failf "seed %d failed to schedule" seed)
      (List.init 40 (fun i -> (i * 53) + 1))
  in
  List.iteri
    (fun i gap ->
      Alcotest.(check bool)
        (Printf.sprintf "seed index %d: gap %d <= 1" i gap)
        true (gap <= 1))
    gaps;
  (* On aggregate the heuristic is essentially optimal. *)
  let avg =
    float_of_int (List.fold_left ( + ) 0 gaps) /. float_of_int (List.length gaps)
  in
  Alcotest.(check bool)
    (Printf.sprintf "average gap %.3f below 0.2" avg)
    true (avg < 0.2)

let exact_never_beats_lower_bound =
  Helpers.qcheck ~count:30 "exact optimum respects the ceil(N/cs) floor"
    (Helpers.dag_gen ~max_ops:10 ())
    (fun g ->
      let cs = Dfg.Bounds.critical_path g + 1 in
      match Baselines.Exact.min_units g ~cs with
      | Error _ -> false
      | Ok opt ->
          let floor_sum =
            List.fold_left
              (fun acc (_, n_c) -> acc + ((n_c + cs - 1) / cs))
              0 (Dfg.Graph.count_by_class g)
          in
          opt >= floor_sum)

let suite =
  [
    test "diffeq proven optimum" diffeq_optimum;
    test "tseng proven optima" tseng_optimum;
    test "serial chain" chain_trivial;
    test "weighted objective" weighted_objective;
    test "multi-cycle exact" multicycle_exact;
    test "node budget guard" budget_guard;
    test "infeasible budget" infeasible;
    test "MFS optimality gap over fixed seeds" mfs_gap_bounded;
    exact_never_beats_lower_bound;
  ]
