let test name f = Alcotest.test_case name `Quick f

let synthesised name =
  let g = Option.get (Workloads.Classic.by_name name) in
  let lib = Celllib.Ncr.for_graph g in
  let o =
    Helpers.check_okd "mfsa"
      (Core.Mfsa.run ~library:lib ~cs:(Dfg.Bounds.critical_path g + 1) g)
  in
  let delay i =
    Core.Config.delay o.Core.Mfsa.schedule.Core.Schedule.config
      (Dfg.Graph.node g i).Dfg.Graph.kind
  in
  let ctrl =
    Helpers.check_ok "controller"
      (Rtl.Controller.generate o.Core.Mfsa.datapath ~delay)
  in
  (o, ctrl)

let structure () =
  let o, ctrl = synthesised "diffeq" in
  let src = Rtl.Verilog.emit ~module_name:"diffeq" o.Core.Mfsa.datapath ctrl in
  Alcotest.(check bool) "module header" true
    (Helpers.contains ~sub:"module diffeq(clk, rst" src);
  Alcotest.(check bool) "endmodule" true (Helpers.contains ~sub:"endmodule" src);
  (* One declared register per allocated register, one wire per ALU. *)
  Alcotest.(check int) "register declarations"
    o.Core.Mfsa.cost.Rtl.Cost.n_regs
    (Helpers.count_occurrences ~sub:"reg [31:0] reg_" src);
  Alcotest.(check int) "one wire per ALU"
    o.Core.Mfsa.cost.Rtl.Cost.n_alus
    (Helpers.count_occurrences ~sub:"wire [31:0] alu_out_" src)

let all_nodes_present () =
  let o, ctrl = synthesised "tseng" in
  let g = o.Core.Mfsa.schedule.Core.Schedule.graph in
  let src = Rtl.Verilog.emit o.Core.Mfsa.datapath ctrl in
  List.iter
    (fun nd ->
      Alcotest.(check bool)
        (nd.Dfg.Graph.name ^ " mentioned")
        true
        (Helpers.contains ~sub:("// " ^ nd.Dfg.Graph.name) src))
    (Dfg.Graph.nodes g)

let sanitizer () =
  let g =
    Helpers.graph_exn ~inputs:[ "weird-name" ]
      [ Helpers.op "n" Dfg.Op.Neg [ "weird-name" ] ]
  in
  let dp =
    Helpers.check_ok "elaborate"
      (Rtl.Datapath.elaborate g ~start:[| 1 |] ~delay:(fun _ -> 1) ~cs:1
         ~assignments:[ (Celllib.Library.make_alu [ Dfg.Op.Neg ], [ 0 ]) ])
  in
  let ctrl =
    Helpers.check_ok "controller" (Rtl.Controller.generate dp ~delay:(fun _ -> 1))
  in
  let src = Rtl.Verilog.emit dp ctrl in
  Alcotest.(check bool) "dash sanitised" true
    (Helpers.contains ~sub:"weird_name" src);
  Alcotest.(check bool) "no dash identifier" false
    (Helpers.contains ~sub:"input [31:0] weird-name" src)

let guards_in_rtl () =
  let g = Workloads.Classic.cond_example () in
  let lib = Celllib.Ncr.for_graph g in
  let o =
    Helpers.check_okd "mfsa"
      (Core.Mfsa.run ~library:lib ~cs:(Dfg.Bounds.critical_path g) g)
  in
  let ctrl =
    Helpers.check_ok "controller"
      (Rtl.Controller.generate o.Core.Mfsa.datapath ~delay:(fun _ -> 1))
  in
  let src = Rtl.Verilog.emit o.Core.Mfsa.datapath ctrl in
  Alcotest.(check bool) "guard condition appears" true
    (Helpers.contains ~sub:"c1 != 0" src)

let suite =
  [
    test "module structure" structure;
    test "every op appears in the netlist" all_nodes_present;
    test "identifiers sanitised" sanitizer;
    test "guards gate register writes" guards_in_rtl;
  ]
