let test name f = Alcotest.test_case name `Quick f

let unit_delay _ = 1
let alu kinds = Celllib.Library.make_alu kinds

let diamond_buses () =
  let g = Helpers.diamond () in
  let dp =
    Helpers.check_ok "elaborate"
      (Rtl.Datapath.elaborate g ~start:[| 1; 1; 2 |] ~delay:unit_delay ~cs:2
         ~assignments:
           [ (alu [ Dfg.Op.Mul ], [ 0 ]); (alu [ Dfg.Op.Mul ], [ 1 ]);
             (alu [ Dfg.Op.Add ], [ 2 ]) ])
  in
  let b = Rtl.Bus.allocate dp in
  (* Step 1 moves four input operands, step 2 two register operands. *)
  Alcotest.(check int) "peak transfers" 4 b.Rtl.Bus.buses;
  Alcotest.(check int) "step 1 load" 4 b.Rtl.Bus.per_step.(1);
  Alcotest.(check int) "step 2 load" 2 b.Rtl.Bus.per_step.(2);
  (match Rtl.Bus.check b with
  | Ok () -> ()
  | Error errs -> Alcotest.failf "invalid: %s" (String.concat ";" errs));
  Alcotest.(check bool) "cost positive" true (Rtl.Bus.cost b > 0.)

let chained_operands_skip_buses () =
  let g = Helpers.chain4 () in
  let dp =
    Helpers.check_ok "elaborate"
      (Rtl.Datapath.elaborate g ~start:[| 1; 1; 2; 2 |] ~delay:unit_delay
         ~cs:2
         ~assignments:
           [ (alu [ Dfg.Op.Add ], [ 0; 2 ]); (alu [ Dfg.Op.Add ], [ 1; 3 ]) ])
  in
  let b = Rtl.Bus.allocate dp in
  (* c2 and c4 read their chained operand over a direct wire. *)
  Alcotest.(check bool) "chained reads not bused" true
    (List.for_all
       (fun tr -> match tr.Rtl.Bus.t_source with
          | Rtl.Datapath.From_alu _ -> false
          | _ -> true)
       b.Rtl.Bus.transfers);
  (* Step 1: c1 reads x,y on buses; c2 reads only y on a bus. *)
  Alcotest.(check int) "step 1 transfers" 3 b.Rtl.Bus.per_step.(1)

let serial_design_needs_fewer_buses () =
  (* The MUX-vs-bus trade-off: a serial schedule needs few buses. *)
  let g = Workloads.Classic.diffeq () in
  let lib = Celllib.Ncr.for_graph g in
  let fast = Helpers.check_okd "fast" (Core.Mfsa.run ~library:lib ~cs:4 g) in
  let slow =
    Helpers.check_okd "slow"
      (Core.Mfsa.run_resource ~library:lib ~limits:[ ("*", 1) ] g)
  in
  let buses o = (Rtl.Bus.allocate o.Core.Mfsa.datapath).Rtl.Bus.buses in
  Alcotest.(check bool) "serial needs fewer buses" true
    (buses slow <= buses fast)

let bus_validity_random =
  Helpers.qcheck ~count:40 "bus allocation is valid on random designs"
    (Helpers.dag_gen ~max_ops:20 ())
    (fun g ->
      let lib = Celllib.Ncr.for_graph g in
      let cs = Dfg.Bounds.critical_path g + 1 in
      match Core.Mfsa.run ~library:lib ~cs g with
      | Error _ -> false
      | Ok o ->
          let b = Rtl.Bus.allocate o.Core.Mfsa.datapath in
          Rtl.Bus.check b = Ok ()
          && b.Rtl.Bus.buses
             = Array.fold_left max 0 b.Rtl.Bus.per_step)

let suite =
  [
    test "diamond bus allocation" diamond_buses;
    test "chained operands use direct wires" chained_operands_skip_buses;
    test "serial designs need fewer buses" serial_design_needs_fewer_buses;
    bus_validity_random;
  ]
