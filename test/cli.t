The CLI's diagnostic contract: typed errors on stderr, stable exit codes
(2 usage, 3 bad input, 4 infeasible, 5 internal), JSON rendering behind
--json-errors.

A missing input file is a bad-input error (exit 3):

  $ ../bin/synth.exe mfs /nonexistent/no-such.dfg
  error: error[io.no-such-input] /nonexistent/no-such.dfg: no such file or built-in example (try ex1..ex6, diffeq, ewf, fir16, dct8, ar, tseng, chained, facet, cond)
  [3]

A parse error carries a file:line:col span pointing at the offending word:

  $ printf 'input a\nn = frobnicate a\n' > bad.dfg
  $ ../bin/synth.exe mfs bad.dfg
  error: error[parse.unknown-op] bad.dfg:2:5: unknown operation "frobnicate"
  [3]

--json-errors renders the same diagnostic as one JSON object:

  $ ../bin/synth.exe mfs bad.dfg --json-errors
  {"code":"parse.unknown-op","category":"input","severity":"error","file":"bad.dfg","span":{"line":2,"col":5,"end_line":2,"end_col":15},"message":"unknown operation \"frobnicate\""}
  [3]

A well-formed problem with no solution under the given budget is
infeasible (exit 4), not an input error:

  $ printf 'input a b\nm = mul a b\ns = add m b\nt = sub s a\n' > chain.dfg
  $ ../bin/synth.exe mfs chain.dfg --cs 2
  error: error[mfs.infeasible-budget] infeasible: operation "t" cannot fit in 2 control steps (critical path is 3)
  [4]

  $ ../bin/synth.exe mfs chain.dfg --cs 2 --json-errors
  {"code":"mfs.infeasible-budget","category":"infeasible","severity":"error","message":"infeasible: operation \"t\" cannot fit in 2 control steps (critical path is 3)"}
  [4]

Bad command lines are usage errors (exit 2):

  $ ../bin/synth.exe mfsa chain.dfg --style 7 2>&1 | head -n 1
  synth: option '--style': invalid value '7', expected either '1' or '2'
  $ ../bin/synth.exe mfsa chain.dfg --style 7 > /dev/null 2>&1
  [2]

The happy path still exits 0:

  $ ../bin/synth.exe mfs chain.dfg --cs 3 > /dev/null

The batch runner: a manifest of jobs under the supervised pool. The
happy path journals every verdict and exits 0:

  $ printf 'diffeq --cs 4\newf --cs 17\nex1 --cse\n# a comment\ndiffeq --cs 1\n' > jobs.txt
  $ ../bin/synth.exe batch jobs.txt --jobs 2 --journal batch.jsonl
  #1 diffeq --cs 4: done
  #2 ewf --cs 17: done
  #3 ex1 --cse: done
  #4 diffeq --cs 1: rejected (lint.infeasible-budget)
  batch: 4 job(s) — 4 completed, 0 failed

Fault containment: one job hangs, one segfaults; the watchdogs kill and
classify them while every other job completes, and the batch reports
partial failure (exit 6):

  $ printf 'diffeq --cs 4\newf --inject hang\nex1 --inject segv\nex2\nex3\n' > faulty.txt
  $ ../bin/synth.exe batch faulty.txt --jobs 2 --journal faulty.jsonl --deadline 2 --retries 0
  #1 diffeq --cs 4: done
  #2 ewf --inject hang: timeout
  #3 ex1 --inject segv: crashed (SIGSEGV)
  #4 ex2: done
  #5 ex3: done
  batch: 5 job(s) — 3 completed, 2 failed
  error: error[batch.partial-failure] 2 of 5 job(s) failed
  [6]

--resume replays the journalled verdicts without re-running anything
(the hang would otherwise cost another deadline):

  $ ../bin/synth.exe batch faulty.txt --jobs 2 --journal faulty.jsonl --resume --deadline 2 --retries 0
  resume: 5 job(s) already journalled, skipped
  #1 diffeq --cs 4: done
  #2 ewf --inject hang: timeout
  #3 ex1 --inject segv: crashed (SIGSEGV)
  #4 ex2: done
  #5 ex3: done
  batch: 5 job(s) — 3 completed, 2 failed
  error: error[batch.partial-failure] 2 of 5 job(s) failed
  [6]

--resume without a journal is a usage error:

  $ ../bin/synth.exe batch jobs.txt --resume
  error: error[batch.usage] --resume requires --journal PATH
  [2]

A malformed manifest line is rejected with a file:line span:

  $ printf 'diffeq --cs nope\n' > broken.txt
  $ ../bin/synth.exe batch broken.txt
  error: error[batch.manifest] broken.txt:1:1: --cs nope: expected an integer
  [3]

SIGINT kills the workers, leaves the journal flushed, and exits 130:

  $ printf 'diffeq --inject hang\newf --inject hang\n' > slow.txt
  $ ../bin/synth.exe batch slow.txt --jobs 2 --deadline 30 --retries 0 > /dev/null 2> interrupted.log & pid=$!
  $ sleep 0.5
  $ kill -INT $pid
  $ wait $pid
  [130]
  $ cat interrupted.log
  batch: interrupted; workers killed, journal flushed

Process faults make no sense for the static lint passes — the CLI says
where they belong:

  $ ../bin/synth.exe lint diffeq --inject segv 2>&1 | head -n 1
  error: error[lint.process-fault] --inject segv is a process fault: it takes the worker down instead of corrupting an artefact a static pass could catch. Use 'synth batch' with a manifest fault to prove containment.

The version surface is stable — 'synth version' and '--version' print
one identical line:

  $ ../bin/synth.exe version
  synth 0.6.0
  $ ../bin/synth.exe --version
  synth 0.6.0

Malformed memory declarations carry spans like every other parse error —
a truncated array directive points at the keyword, a bad size at the
number, and a mem line without its ports clause at the keyword:

  $ printf 'input a\narray A\nx = ld A a\n' > badarr.dfg
  $ ../bin/synth.exe mfs badarr.dfg
  error: error[parse.bad-array] badarr.dfg:2:1: expected: array <name> <size> [bank <bank>]
  [3]
  $ printf 'input a\narray A 0\nx = ld A a\n' > badsize.dfg
  $ ../bin/synth.exe mfs badsize.dfg
  error: error[parse.bad-array] badsize.dfg:2:9: array "A" needs a positive size, got 0
  [3]
  $ printf 'input a\narray A 4\nmem A gates 2\nx = ld A a\n' > badmem.dfg
  $ ../bin/synth.exe mfs badmem.dfg
  error: error[parse.bad-mem] badmem.dfg:3:1: expected: mem <bank> ports <n>
  [3]
