The CLI's diagnostic contract: typed errors on stderr, stable exit codes
(2 usage, 3 bad input, 4 infeasible, 5 internal), JSON rendering behind
--json-errors.

A missing input file is a bad-input error (exit 3):

  $ ../bin/synth.exe mfs /nonexistent/no-such.dfg
  error: error[io.no-such-input] /nonexistent/no-such.dfg: no such file or built-in example (try ex1..ex6, diffeq, ewf, fir16, dct8, ar, tseng, chained, facet, cond)
  [3]

A parse error carries a file:line:col span pointing at the offending word:

  $ printf 'input a\nn = frobnicate a\n' > bad.dfg
  $ ../bin/synth.exe mfs bad.dfg
  error: error[parse.unknown-op] bad.dfg:2:5: unknown operation "frobnicate"
  [3]

--json-errors renders the same diagnostic as one JSON object:

  $ ../bin/synth.exe mfs bad.dfg --json-errors
  {"code":"parse.unknown-op","category":"input","severity":"error","file":"bad.dfg","span":{"line":2,"col":5,"end_line":2,"end_col":15},"message":"unknown operation \"frobnicate\""}
  [3]

A well-formed problem with no solution under the given budget is
infeasible (exit 4), not an input error:

  $ printf 'input a b\nm = mul a b\ns = add m b\nt = sub s a\n' > chain.dfg
  $ ../bin/synth.exe mfs chain.dfg --cs 2
  error: error[mfs.infeasible-budget] infeasible: operation "t" cannot fit in 2 control steps (critical path is 3)
  [4]

  $ ../bin/synth.exe mfs chain.dfg --cs 2 --json-errors
  {"code":"mfs.infeasible-budget","category":"infeasible","severity":"error","message":"infeasible: operation \"t\" cannot fit in 2 control steps (critical path is 3)"}
  [4]

Bad command lines are usage errors (exit 2):

  $ ../bin/synth.exe mfsa chain.dfg --style 7 2>&1 | head -n 1
  synth: option '--style': invalid value '7', expected either '1' or '2'
  $ ../bin/synth.exe mfsa chain.dfg --style 7 > /dev/null 2>&1
  [2]

The happy path still exits 0:

  $ ../bin/synth.exe mfs chain.dfg --cs 3 > /dev/null
