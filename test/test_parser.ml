let test name f = Alcotest.test_case name `Quick f

let parse_minimal () =
  let g =
    Helpers.check_okd "parse"
      (Dfg.Parser.parse "input a b\nn1 = add a b\nn2 = mul n1 a\n")
  in
  Alcotest.(check int) "two nodes" 2 (Dfg.Graph.num_nodes g)

let parse_symbols_and_comments () =
  let src = "# a comment\ninput a b   # trailing\nn1 = + a b\nn2 = * n1 a\n" in
  let g = Helpers.check_okd "parse" (Dfg.Parser.parse src) in
  Alcotest.(check string) "n1 kind" "add"
    (Dfg.Op.to_string (Option.get (Dfg.Graph.find g "n1")).Dfg.Graph.kind)

let parse_guards () =
  let src = "input a b\nc = lt a b\nt = add a b @ c\nu = sub a b @ !c\n" in
  let g = Helpers.check_okd "parse" (Dfg.Parser.parse src) in
  let t = Option.get (Dfg.Graph.find g "t") in
  let u = Option.get (Dfg.Graph.find g "u") in
  Alcotest.(check (list (pair string bool))) "t guard" [ ("c", true) ]
    t.Dfg.Graph.guards;
  Alcotest.(check (list (pair string bool))) "u guard" [ ("c", false) ]
    u.Dfg.Graph.guards

let parse_blank_lines () =
  let g =
    Helpers.check_okd "parse" (Dfg.Parser.parse "\n\ninput a\n\nn = neg a\n\n")
  in
  Alcotest.(check int) "one node" 1 (Dfg.Graph.num_nodes g)

let error_has_line_number () =
  let d =
    Helpers.check_errd "bad op" (Dfg.Parser.parse "input a\nn = frobnicate a\n")
  in
  let span = Option.get d.Diag.span in
  Alcotest.(check int) "line 2 reported" 2 span.Diag.line;
  Alcotest.(check int) "column points at the op" 5 span.Diag.col;
  Alcotest.(check string) "code" "parse.unknown-op" d.Diag.code

let error_bad_shape () =
  let d = Helpers.check_errd "garbage" (Dfg.Parser.parse "hello world\n") in
  let span = Option.get d.Diag.span in
  Alcotest.(check int) "line 1 reported" 1 span.Diag.line

let error_empty_input_decl () =
  ignore (Helpers.check_errd "bare input" (Dfg.Parser.parse "input\n"))

let crlf_accepted () =
  (* Regression: CRLF sources used to leave a trailing [\r] on the last
     operand, producing a bogus "unknown operand" error. *)
  let g =
    Helpers.check_okd "crlf"
      (Dfg.Parser.parse "input a b\r\nn1 = add a b\r\nn2 = mul n1 a\r\n")
  in
  Alcotest.(check int) "two nodes" 2 (Dfg.Graph.num_nodes g);
  Alcotest.(check (list string)) "inputs intact" [ "a"; "b" ]
    (Dfg.Graph.inputs g)

let error_semantic () =
  (* Syntax fine, graph invalid: builder error surfaces. *)
  ignore
    (Helpers.check_errd "unknown operand" (Dfg.Parser.parse "input a\nn = add a zz\n"))

let missing_file () =
  ignore (Helpers.check_errd "ENOENT" (Dfg.Parser.parse_file "/nonexistent/x.dfg"))

let equal_graph a b =
  Dfg.Graph.num_nodes a = Dfg.Graph.num_nodes b
  && Dfg.Graph.inputs a = Dfg.Graph.inputs b
  && List.for_all2
       (fun x y ->
         x.Dfg.Graph.name = y.Dfg.Graph.name
         && x.Dfg.Graph.kind = y.Dfg.Graph.kind
         && x.Dfg.Graph.args = y.Dfg.Graph.args
         && x.Dfg.Graph.guards = y.Dfg.Graph.guards)
       (Dfg.Graph.nodes a) (Dfg.Graph.nodes b)

let roundtrip_classics () =
  List.iter
    (fun (name, g) ->
      let g' =
        Helpers.check_okd (name ^ " reparse")
          (Dfg.Parser.parse (Dfg.Parser.to_source g))
      in
      Alcotest.(check bool) (name ^ " roundtrips") true (equal_graph g g'))
    (Workloads.Classic.all () @ [ ("cond", Workloads.Classic.cond_example ()) ])

let roundtrip_random =
  Helpers.qcheck ~count:60 "to_source/parse roundtrips random DAGs"
    (Helpers.dag_gen ())
    (fun g ->
      match Dfg.Parser.parse (Dfg.Parser.to_source g) with
      | Ok g' -> equal_graph g g'
      | Error _ -> false)

let suite =
  [
    test "minimal program" parse_minimal;
    test "operator symbols and comments" parse_symbols_and_comments;
    test "guards" parse_guards;
    test "blank lines ignored" parse_blank_lines;
    test "unknown op reports its line" error_has_line_number;
    test "unparsable line reported" error_bad_shape;
    test "CRLF line endings accepted" crlf_accepted;
    test "empty input declaration rejected" error_empty_input_decl;
    test "semantic errors surface" error_semantic;
    test "missing file is an Error" missing_file;
    test "classic workloads roundtrip" roundtrip_classics;
    roundtrip_random;
  ]
