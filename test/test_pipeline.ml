let test name f = Alcotest.test_case name `Quick f

let double_structure () =
  let g = Helpers.diamond () in
  let g2 = Helpers.check_okd "double" (Core.Pipeline.double g) in
  Alcotest.(check int) "twice the nodes" (2 * Dfg.Graph.num_nodes g)
    (Dfg.Graph.num_nodes g2);
  Alcotest.(check int) "twice the inputs"
    (2 * List.length (Dfg.Graph.inputs g))
    (List.length (Dfg.Graph.inputs g2));
  Alcotest.(check bool) "instance 1 present" true
    (Dfg.Graph.find g2 "s_i1" <> None);
  Alcotest.(check bool) "instance 2 present" true
    (Dfg.Graph.find g2 "s_i2" <> None);
  (* The instances are independent: critical path unchanged. *)
  Alcotest.(check int) "critical path preserved"
    (Dfg.Bounds.critical_path g)
    (Dfg.Bounds.critical_path g2)

let double_custom_suffixes () =
  let g = Helpers.diamond () in
  let g2 =
    Helpers.check_okd "double" (Core.Pipeline.double ~suffixes:("_a", "_b") g)
  in
  Alcotest.(check bool) "custom suffix" true (Dfg.Graph.find g2 "m1_a" <> None)

let slots () =
  Alcotest.(check int) "step 1 slot 0" 0 (Core.Pipeline.slot ~latency:4 1);
  Alcotest.(check int) "step 4 slot 3" 3 (Core.Pipeline.slot ~latency:4 4);
  Alcotest.(check int) "step 5 wraps" 0 (Core.Pipeline.slot ~latency:4 5)

let folded_profile_sums () =
  let config =
    { Core.Config.default with Core.Config.functional_latency = Some 3 }
  in
  let g = Workloads.Classic.ar_filter () in
  let cs = Dfg.Bounds.critical_path g in
  let o = Helpers.mfs_time ~config g cs in
  let profile = Core.Pipeline.folded_profile o.Core.Mfs.schedule ~latency:3 in
  List.iter
    (fun (c, arr) ->
      let expected =
        Option.value ~default:0 (List.assoc_opt c (Dfg.Graph.count_by_class g))
      in
      Alcotest.(check int) (c ^ " mass preserved") expected
        (Array.fold_left ( + ) 0 arr))
    profile

let folded_profile_bounds_units () =
  let config =
    { Core.Config.default with Core.Config.functional_latency = Some 4 }
  in
  let g = Workloads.Classic.ar_filter () in
  let cs = Dfg.Bounds.critical_path g in
  let o = Helpers.mfs_time ~config g cs in
  let profile = Core.Pipeline.folded_profile o.Core.Mfs.schedule ~latency:4 in
  (* Units bound by MFS must cover the peak folded slot load. *)
  List.iter
    (fun (c, arr) ->
      let peak = Array.fold_left max 0 arr in
      Alcotest.(check bool)
        (c ^ " units cover the folded peak")
        true
        (Helpers.fu_count o.Core.Mfs.schedule c >= peak))
    profile

let speedup_value () =
  Alcotest.(check (float 1e-9)) "13/4" 3.25
    (Core.Pipeline.speedup ~cs:13 ~latency:4)

let min_latency_bound () =
  let g = Workloads.Classic.ar_filter () in
  (* 13 multiplications on 3 multipliers: at least ceil(13/3) = 5. *)
  let ml =
    Core.Pipeline.min_latency g Core.Config.default ~limits:[ ("*", 3) ]
  in
  Alcotest.(check bool) "at least 5" true (ml >= 5);
  let relaxed =
    Core.Pipeline.min_latency g Core.Config.default
      ~limits:[ ("*", 13); ("+", 8); ("-", 4) ]
  in
  Alcotest.(check int) "fully parallel floor" 1 relaxed

let folding_conflicts_enforced () =
  (* With latency 2 and one multiplier class unit, steps 1 and 3 conflict:
     MFS must allocate extra units rather than fold onto one. *)
  let config =
    { Core.Config.default with Core.Config.functional_latency = Some 2 }
  in
  let g =
    Helpers.graph_exn ~inputs:[ "a"; "b" ]
      [
        Helpers.op "m1" Dfg.Op.Mul [ "a"; "b" ];
        Helpers.op "m2" Dfg.Op.Mul [ "m1"; "b" ];
        Helpers.op "m3" Dfg.Op.Mul [ "m2"; "b" ];
      ]
  in
  let o = Helpers.mfs_time ~config g 3 in
  Helpers.check_schedule o.Core.Mfs.schedule;
  (* Three serial mults fold into 2 slots: at least two units. *)
  Alcotest.(check bool) "folding forces a second unit" true
    (Helpers.fu_count o.Core.Mfs.schedule "*" >= 2)

let replicate_structure () =
  let g = Helpers.diamond () in
  let g3 = Helpers.check_okd "replicate" (Core.Pipeline.replicate ~copies:3 g) in
  Alcotest.(check int) "triple nodes" (3 * Dfg.Graph.num_nodes g)
    (Dfg.Graph.num_nodes g3);
  Alcotest.(check bool) "third instance present" true
    (Dfg.Graph.find g3 "s_i3" <> None);
  let d = Helpers.check_errd "copies >= 1" (Core.Pipeline.replicate ~copies:0 g) in
  Alcotest.(check string) "diag code" "pipeline.bad-copies" d.Diag.code

let unfold_certifies_folding () =
  (* The 5.5.2 property: a folded schedule materialises as overlapped
     instances on the same units, and the unfolded schedule is valid. *)
  let config =
    { Core.Config.default with Core.Config.functional_latency = Some 4 }
  in
  let g = Workloads.Classic.ar_filter () in
  let cs = Dfg.Bounds.critical_path g in
  let o = Helpers.mfs_time ~config g cs in
  let unfolded =
    Helpers.check_okd "unfold"
      (Core.Pipeline.unfold o.Core.Mfs.schedule ~latency:4 ())
  in
  Helpers.check_schedule unfolded;
  (* Steady state: units of the unfolded run equal the folded counts. *)
  List.iter
    (fun (c, folded_units) ->
      let unfolded_units =
        Option.value ~default:0
          (List.assoc_opt c (Core.Schedule.fu_counts unfolded))
      in
      Alcotest.(check int) (c ^ " same unit count") folded_units unfolded_units)
    (Core.Schedule.fu_counts o.Core.Mfs.schedule)

let unfold_every_classic () =
  List.iter
    (fun (name, g) ->
      let latency = max 2 (Dfg.Bounds.critical_path g / 2) in
      let config =
        { Core.Config.default with
          Core.Config.functional_latency = Some latency }
      in
      let cs = Dfg.Bounds.critical_path g in
      let o = Helpers.mfs_time ~config g cs in
      let unfolded =
        Helpers.check_okd (name ^ " unfold")
          (Core.Pipeline.unfold o.Core.Mfs.schedule ~latency ())
      in
      Helpers.check_schedule unfolded)
    (Workloads.Classic.all ())

let unfold_needs_columns () =
  let g = Helpers.diamond () in
  let s =
    Core.Schedule.make ~config:Core.Config.default ~cs:2 g [| 1; 1; 2 |]
  in
  ignore
    (Helpers.check_errd "no columns" (Core.Pipeline.unfold s ~latency:2 ()))

let suite =
  [
    test "doubling duplicates the graph" double_structure;
    test "replicate k instances" replicate_structure;
    test "unfolding certifies the folded schedule" unfold_certifies_folding;
    test "unfolding works on every classic" unfold_every_classic;
    test "unfold requires column binding" unfold_needs_columns;
    test "custom suffixes" double_custom_suffixes;
    test "slot arithmetic" slots;
    test "folded profile preserves op mass" folded_profile_sums;
    test "units cover the folded peak" folded_profile_bounds_units;
    test "speedup" speedup_value;
    test "min latency bound" min_latency_bound;
    test "folding conflicts force extra units" folding_conflicts_enforced;
  ]
