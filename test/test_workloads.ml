let test name f = Alcotest.test_case name `Quick f

let counts g = Dfg.Graph.count_by_class g
let count g c = Option.value ~default:0 (List.assoc_opt c (counts g))

let diffeq_profile () =
  let g = Workloads.Classic.diffeq () in
  Alcotest.(check int) "ops" 11 (Dfg.Graph.num_nodes g);
  Alcotest.(check int) "mults" 6 (count g "*");
  Alcotest.(check int) "adds" 2 (count g "+");
  Alcotest.(check int) "subs" 2 (count g "-");
  Alcotest.(check int) "cmps" 1 (count g "<");
  Alcotest.(check int) "critical path" 4 (Dfg.Bounds.critical_path g)

let tseng_profile () =
  let g = Workloads.Classic.tseng () in
  Alcotest.(check int) "ops" 7 (Dfg.Graph.num_nodes g);
  List.iter
    (fun (c, k) -> Alcotest.(check int) c k (count g c))
    [ ("+", 2); ("*", 1); ("-", 1); ("&", 1); ("|", 1); ("=", 1) ];
  Alcotest.(check int) "critical path" 4 (Dfg.Bounds.critical_path g)

let chained_profile () =
  let g = Workloads.Classic.chained_sum () in
  Alcotest.(check int) "only adds and subs" 2 (List.length (counts g));
  Alcotest.(check int) "critical path" 5 (Dfg.Bounds.critical_path g)

let ar_profile () =
  let g = Workloads.Classic.ar_filter () in
  Alcotest.(check int) "ops" 25 (Dfg.Graph.num_nodes g);
  Alcotest.(check int) "mults" 13 (count g "*");
  Alcotest.(check int) "adds" 8 (count g "+");
  Alcotest.(check int) "subs" 4 (count g "-")

let fir_profile () =
  let g = Workloads.Classic.fir16 () in
  Alcotest.(check int) "ops" 31 (Dfg.Graph.num_nodes g);
  Alcotest.(check int) "mults" 16 (count g "*");
  Alcotest.(check int) "adds" 15 (count g "+");
  Alcotest.(check int) "tree depth" 5 (Dfg.Bounds.critical_path g)

let dct_profile () =
  let g = Workloads.Classic.dct8 () in
  Alcotest.(check int) "mults" 12 (count g "*");
  Alcotest.(check int) "adds" 12 (count g "+");
  Alcotest.(check int) "subs" 12 (count g "-")

let ewf_profile () =
  let g = Workloads.Classic.ewf () in
  Alcotest.(check int) "ops" 34 (Dfg.Graph.num_nodes g);
  Alcotest.(check int) "adds" 26 (count g "+");
  Alcotest.(check int) "mults" 8 (count g "*");
  Alcotest.(check int) "critical path" 13 (Dfg.Bounds.critical_path g);
  (* Multiplications are on the critical path: with the paper's 2-cycle
     multiplier the EWF lands exactly on its classic 17-step floor. *)
  let delays = function Dfg.Op.Mul -> 2 | _ -> 1 in
  Alcotest.(check int) "cp with 2-cycle mult" 17
    (Dfg.Bounds.critical_path ~delays g)

let biquad_profile () =
  let g = Workloads.Classic.biquad () in
  Alcotest.(check int) "ops" 18 (Dfg.Graph.num_nodes g);
  Alcotest.(check int) "mults" 10 (count g "*");
  Alcotest.(check int) "adds" 4 (count g "+");
  Alcotest.(check int) "subs" 4 (count g "-");
  (* Recurrence: y2 depends on y1 through the full section chain. *)
  Alcotest.(check int) "serial sections" 7 (Dfg.Bounds.critical_path g)

let by_name_aliases () =
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " resolves") true
        (Workloads.Classic.by_name n <> None))
    [ "ex1"; "ex2"; "ex3"; "ex4"; "ex5"; "ex6"; "tseng"; "chained"; "diffeq";
      "facet"; "ar"; "fir16"; "dct8"; "ewf"; "biquad"; "cond" ];
  Alcotest.(check bool) "unknown rejected" true
    (Workloads.Classic.by_name "nonesuch" = None)

let prng_deterministic () =
  let a = Workloads.Prng.create 7 and b = Workloads.Prng.create 7 in
  let xs = List.init 10 (fun _ -> Workloads.Prng.next a) in
  let ys = List.init 10 (fun _ -> Workloads.Prng.next b) in
  Alcotest.(check bool) "same stream" true (xs = ys);
  let c = Workloads.Prng.create 8 in
  let zs = List.init 10 (fun _ -> Workloads.Prng.next c) in
  Alcotest.(check bool) "different seed differs" true (xs <> zs)

let prng_ranges () =
  let r = Workloads.Prng.create 3 in
  for _ = 1 to 200 do
    let v = Workloads.Prng.int r 10 in
    Alcotest.(check bool) "int in range" true (v >= 0 && v < 10);
    let f = Workloads.Prng.float r in
    Alcotest.(check bool) "float in range" true (f >= 0. && f < 1.)
  done;
  Alcotest.check_raises "bad bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Workloads.Prng.int r 0))

let random_dag_deterministic () =
  let a = Workloads.Random_dag.generate_exn ~seed:5 () in
  let b = Workloads.Random_dag.generate_exn ~seed:5 () in
  Alcotest.(check bool) "same graph" true
    (Dfg.Parser.to_source a = Dfg.Parser.to_source b)

let random_dag_spec () =
  let spec =
    { Workloads.Random_dag.default with Workloads.Random_dag.ops = 50;
      guard_prob = 0.3 }
  in
  let g = Workloads.Random_dag.generate_exn ~spec ~seed:11 () in
  (* 50 requested ops plus the guard condition node. *)
  Alcotest.(check int) "op count" 51 (Dfg.Graph.num_nodes g);
  let guarded =
    List.length (List.filter (fun nd -> nd.Dfg.Graph.guards <> []) (Dfg.Graph.nodes g))
  in
  Alcotest.(check bool) "some guarded ops" true (guarded > 0)

let random_dag_bad_spec () =
  let d =
    Helpers.check_errd "zero ops"
      (Workloads.Random_dag.generate
         ~spec:{ Workloads.Random_dag.default with Workloads.Random_dag.ops = 0 }
         ~seed:1 ())
  in
  Alcotest.(check string) "diag code" "random-dag.ops" d.Diag.code;
  Alcotest.check_raises "generate_exn raises"
    (Invalid_argument "Random_dag.generate: ops must be >= 1") (fun () ->
      ignore
        (Workloads.Random_dag.generate_exn
           ~spec:{ Workloads.Random_dag.default with Workloads.Random_dag.ops = 0 }
           ~seed:1 ()))

let classics_evaluate =
  (* Every classic evaluates under the golden model on arbitrary inputs. *)
  Helpers.qcheck ~count:30 "classics evaluate on random inputs"
    QCheck2.Gen.(int_bound 1000)
    (fun salt ->
      List.for_all
        (fun (_, g) ->
          let env = List.mapi (fun i v -> (v, ((i + salt) mod 19) - 9)) (Dfg.Graph.inputs g) in
          match Sim.Eval.run g env with Ok _ -> true | Error _ -> false)
        (Workloads.Classic.all ()))

let suite =
  [
    test "diffeq profile" diffeq_profile;
    test "tseng profile" tseng_profile;
    test "chained-sum profile" chained_profile;
    test "AR filter profile" ar_profile;
    test "FIR16 profile" fir_profile;
    test "DCT8 profile" dct_profile;
    test "EWF profile" ewf_profile;
    test "biquad profile" biquad_profile;
    test "by_name aliases" by_name_aliases;
    test "PRNG determinism" prng_deterministic;
    test "PRNG ranges" prng_ranges;
    test "random DAG determinism" random_dag_deterministic;
    test "random DAG spec honoured" random_dag_spec;
    test "random DAG bad spec" random_dag_bad_spec;
    classics_evaluate;
  ]
