let test name f = Alcotest.test_case name `Quick f

let diffeq_known_optimum () =
  let g = Workloads.Classic.diffeq () in
  let o = Helpers.mfs_time g 4 in
  Helpers.check_schedule o.Core.Mfs.schedule;
  (* The HAL literature result: 2 multipliers, 1 adder, 1 subtractor, 1
     comparator in 4 control steps. *)
  Alcotest.(check int) "multipliers" 2 (Helpers.fu_count o.Core.Mfs.schedule "*");
  Alcotest.(check int) "adders" 1 (Helpers.fu_count o.Core.Mfs.schedule "+");
  Alcotest.(check int) "subtractors" 1 (Helpers.fu_count o.Core.Mfs.schedule "-");
  Alcotest.(check int) "comparators" 1 (Helpers.fu_count o.Core.Mfs.schedule "<")

let diffeq_relaxed () =
  (* 6 multiplications with dependencies need one multiplier from T=7 on. *)
  let g = Workloads.Classic.diffeq () in
  let o = Helpers.mfs_time g 7 in
  Alcotest.(check int) "one multiplier at T=7" 1
    (Helpers.fu_count o.Core.Mfs.schedule "*")

let tseng_shapes () =
  let g = Workloads.Classic.tseng () in
  let at4 = Helpers.mfs_time g 4 in
  let at5 = Helpers.mfs_time g 5 in
  Alcotest.(check int) "T=4 needs two adders" 2
    (Helpers.fu_count at4.Core.Mfs.schedule "+");
  Alcotest.(check int) "T=5 needs one adder" 1
    (Helpers.fu_count at5.Core.Mfs.schedule "+");
  List.iter
    (fun c ->
      Alcotest.(check int) (c ^ " single at T=5") 1
        (Helpers.fu_count at5.Core.Mfs.schedule c))
    [ "*"; "-"; "&"; "|"; "=" ]

let classics_valid_across_budgets () =
  List.iter
    (fun (name, g) ->
      let cp = Dfg.Bounds.critical_path g in
      List.iter
        (fun extra ->
          let o = Helpers.mfs_time g (cp + extra) in
          Helpers.check_schedule o.Core.Mfs.schedule;
          Alcotest.(check bool)
            (Printf.sprintf "%s cp+%d trace monotone" name extra)
            true
            (Core.Liapunov.Trace.non_increasing o.Core.Mfs.trace))
        [ 0; 1; 2; 3 ])
    (Workloads.Classic.all ())

let fu_counts_decrease_with_budget () =
  List.iter
    (fun (name, g) ->
      let cp = Dfg.Bounds.critical_path g in
      let total s =
        List.fold_left (fun a (_, k) -> a + k) 0 (Core.Schedule.fu_counts s)
      in
      let tight = Helpers.mfs_time g cp in
      let loose = Helpers.mfs_time g (cp + 6) in
      Alcotest.(check bool)
        (name ^ ": more budget never needs more units")
        true
        (total loose.Core.Mfs.schedule <= total tight.Core.Mfs.schedule))
    (Workloads.Classic.all ())

let infeasible_budget () =
  let g = Helpers.chain4 () in
  ignore
    (Helpers.check_errd "cs below critical path"
       (Core.Mfs.run g (Core.Mfs.Time { cs = 3 })))

let empty_graph () =
  let g = Helpers.graph_exn ~inputs:[ "a" ] [] in
  ignore (Helpers.check_errd "empty" (Core.Mfs.run g (Core.Mfs.Time { cs = 1 })))

let user_limit_respected () =
  let g = Workloads.Classic.diffeq () in
  let o =
    Helpers.check_okd "limited run"
      (Core.Mfs.run ~max_units:[ ("*", 2) ] g (Core.Mfs.Time { cs = 4 }))
  in
  Alcotest.(check bool) "within limit" true
    (Helpers.fu_count o.Core.Mfs.schedule "*" <= 2)

let user_limit_too_tight () =
  let g = Workloads.Classic.diffeq () in
  let msg =
    Diag.message
      (Helpers.check_errd "one multiplier at cp"
         (Core.Mfs.run ~max_units:[ ("*", 1) ] g (Core.Mfs.Time { cs = 4 })))
  in
  Alcotest.(check bool) "names the class" true (Helpers.contains ~sub:"*" msg)

let resource_constrained_makespan () =
  let g = Workloads.Classic.diffeq () in
  let limits = [ ("*", 2); ("+", 1); ("-", 1); ("<", 1) ] in
  let o =
    Helpers.check_okd "resource run" (Core.Mfs.run g (Core.Mfs.Resource { limits }))
  in
  Helpers.check_schedule o.Core.Mfs.schedule;
  Alcotest.(check int) "critical-path makespan with 2 mults" 4
    (Core.Schedule.makespan o.Core.Mfs.schedule);
  List.iter
    (fun (c, u) ->
      Alcotest.(check bool) (c ^ " within limit") true
        (Helpers.fu_count o.Core.Mfs.schedule c <= u))
    limits

let resource_constrained_single_units () =
  let g = Workloads.Classic.diffeq () in
  let limits = [ ("*", 1); ("+", 1); ("-", 1); ("<", 1) ] in
  let o =
    Helpers.check_okd "resource run" (Core.Mfs.run g (Core.Mfs.Resource { limits }))
  in
  Helpers.check_schedule o.Core.Mfs.schedule;
  (* 6 serialized multiplications plus the dependent subtract tail. *)
  Alcotest.(check int) "makespan 7" 7 (Core.Schedule.makespan o.Core.Mfs.schedule)

let multicycle_mult () =
  let config =
    { Core.Config.default with
      Core.Config.delays = (function Dfg.Op.Mul -> 2 | _ -> 1) }
  in
  let g = Workloads.Classic.diffeq () in
  let cp = Dfg.Bounds.critical_path ~delays:(Core.Config.delay config) g in
  Alcotest.(check int) "2-cycle critical path" 6 cp;
  let o = Helpers.mfs_time ~config g cp in
  Helpers.check_schedule o.Core.Mfs.schedule

let structural_pipelining_reduces_units () =
  let two_cycle =
    { Core.Config.default with
      Core.Config.delays = (function Dfg.Op.Mul -> 2 | _ -> 1) }
  in
  let pipelined =
    { two_cycle with
      Core.Config.pipelined = (function Dfg.Op.Mul -> true | _ -> false) }
  in
  let g = Workloads.Classic.ewf () in
  let cp = Dfg.Bounds.critical_path ~delays:(Core.Config.delay two_cycle) g in
  let plain = Helpers.mfs_time ~config:two_cycle g cp in
  let piped = Helpers.mfs_time ~config:pipelined g cp in
  Helpers.check_schedule plain.Core.Mfs.schedule;
  Helpers.check_schedule piped.Core.Mfs.schedule;
  Alcotest.(check bool) "pipelined units never worse" true
    (Helpers.fu_count piped.Core.Mfs.schedule "*"
    <= Helpers.fu_count plain.Core.Mfs.schedule "*")

let chaining_compresses () =
  let chaining =
    Some
      {
        Core.Config.prop_delay =
          (function Dfg.Op.Add | Dfg.Op.Sub -> 40. | _ -> 10.);
        clock = 100.;
      }
  in
  let config = { Core.Config.default with Core.Config.chaining } in
  let g = Workloads.Classic.chained_sum () in
  let plain_cp = Dfg.Bounds.critical_path g in
  let chained_cp = Core.Timeframe.min_cs config g in
  Alcotest.(check int) "plain depth" 5 plain_cp;
  Alcotest.(check int) "chained depth" 3 chained_cp;
  let o = Helpers.mfs_time ~config g chained_cp in
  Helpers.check_schedule o.Core.Mfs.schedule

let functional_pipelining () =
  let config =
    { Core.Config.default with Core.Config.functional_latency = Some 4 }
  in
  let g = Workloads.Classic.ar_filter () in
  let cs = Dfg.Bounds.critical_path g in
  let o = Helpers.mfs_time ~config g cs in
  Helpers.check_schedule o.Core.Mfs.schedule;
  (* 13 mults folded into 4 slots need at least ceil(13/4) = 4 units. *)
  Alcotest.(check bool) "folding floor respected" true
    (Helpers.fu_count o.Core.Mfs.schedule "*" >= 4)

let mutex_sharing_saves_units () =
  let g = Workloads.Classic.cond_example () in
  let cp = Dfg.Bounds.critical_path g in
  let share = Helpers.mfs_time g cp in
  let noshare =
    Helpers.mfs_time
      ~config:{ Core.Config.default with Core.Config.share_mutex = false }
      g cp
  in
  Helpers.check_schedule share.Core.Mfs.schedule;
  Helpers.check_schedule noshare.Core.Mfs.schedule;
  let total s =
    List.fold_left (fun a (_, k) -> a + k) 0 (Core.Schedule.fu_counts s)
  in
  Alcotest.(check bool) "sharing never needs more units" true
    (total share.Core.Mfs.schedule <= total noshare.Core.Mfs.schedule)

let restarts_reported () =
  (* A graph engineered to underestimate ceil(N/cs): 3 mults that must all
     run in step 1 of a 3-step budget; current starts at 1, so local
     rescheduling must grow it twice. *)
  let g =
    Helpers.graph_exn ~inputs:[ "a"; "b" ]
      [
        Helpers.op "m1" Dfg.Op.Mul [ "a"; "b" ];
        Helpers.op "m2" Dfg.Op.Mul [ "a"; "b" ];
        Helpers.op "m3" Dfg.Op.Mul [ "a"; "b" ];
        Helpers.op "a1" Dfg.Op.Add [ "m1"; "m2" ];
        Helpers.op "a2" Dfg.Op.Add [ "a1"; "m3" ];
      ]
  in
  let o = Helpers.mfs_time g 3 in
  Helpers.check_schedule o.Core.Mfs.schedule;
  Alcotest.(check bool) "local reschedulings happened" true
    (o.Core.Mfs.restarts > 0);
  (* m1/m2 must share step 1 (ALAP 1); m3 slips to step 2 on a reused unit. *)
  Alcotest.(check int) "two multipliers" 2
    (Helpers.fu_count o.Core.Mfs.schedule "*")

(* Exhaustive reference: minimum total units over every precedence-feasible
   start assignment within the ASAP/ALAP frames. Only tractable for tiny
   graphs, where it pins down MFS's optimality gap. *)
let brute_force_min_units g ~cs =
  let b =
    match Dfg.Bounds.compute g ~cs with
    | Ok b -> b
    | Error e -> Alcotest.fail e
  in
  let n = Dfg.Graph.num_nodes g in
  let order = Dfg.Graph.topological g in
  let start = Array.make n 0 in
  let best = ref max_int in
  let total_units () =
    List.fold_left (fun acc (_, k) -> acc + k) 0
      (Dfg.Bounds.concurrency g ~start ~cs)
  in
  let rec assign = function
    | [] -> best := min !best (total_units ())
    | i :: rest ->
        let ready =
          List.fold_left
            (fun acc p -> max acc (start.(p) + 1))
            b.Dfg.Bounds.asap.(i) (Dfg.Graph.preds g i)
        in
        for s = ready to b.Dfg.Bounds.alap.(i) do
          start.(i) <- s;
          assign rest
        done
  in
  assign order;
  !best

let near_optimal_on_tiny_graphs () =
  List.iter
    (fun seed ->
      let g =
        Workloads.Random_dag.generate_exn
          ~spec:{ Workloads.Random_dag.default with Workloads.Random_dag.ops = 6 }
          ~seed ()
      in
      let cs = Dfg.Bounds.critical_path g + 1 in
      let optimum = brute_force_min_units g ~cs in
      let o = Helpers.mfs_time g cs in
      let total =
        List.fold_left (fun acc (_, k) -> acc + k) 0
          (Core.Schedule.fu_counts o.Core.Mfs.schedule)
      in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: MFS %d vs optimum %d" seed total optimum)
        true
        (total <= optimum + 1))
    (List.init 25 (fun i -> i * 37))

let exactly_optimal_on_classics () =
  (* Known optima at the critical path: diffeq 5 units, tseng 7 units. *)
  let check name g cs expected =
    let o = Helpers.mfs_time g cs in
    let total =
      List.fold_left (fun acc (_, k) -> acc + k) 0
        (Core.Schedule.fu_counts o.Core.Mfs.schedule)
    in
    Alcotest.(check int) name expected total
  in
  check "diffeq T=4" (Workloads.Classic.diffeq ()) 4 5;
  check "tseng T=5" (Workloads.Classic.tseng ()) 5 6

let random_dags_valid =
  Helpers.qcheck ~count:80 "MFS schedules random DAGs validly"
    (Helpers.dag_gen ~max_ops:30 ())
    (fun g ->
      let cp = Dfg.Bounds.critical_path g in
      match Core.Mfs.run g (Core.Mfs.Time { cs = cp + 1 }) with
      | Error _ -> false
      | Ok o ->
          Core.Schedule.check o.Core.Mfs.schedule = Ok ()
          && Core.Liapunov.Trace.non_increasing o.Core.Mfs.trace
          && Core.Liapunov.Trace.positive o.Core.Mfs.trace)

let random_multicycle_valid =
  Helpers.qcheck ~count:50 "MFS handles 2-cycle mult/div on random DAGs"
    (Helpers.wide_dag_gen ~max_ops:24 ())
    (fun g ->
      let config =
        { Core.Config.default with
          Core.Config.delays =
            (function Dfg.Op.Mul | Dfg.Op.Div -> 2 | _ -> 1) }
      in
      let cp = Dfg.Bounds.critical_path ~delays:(Core.Config.delay config) g in
      match Core.Mfs.run ~config g (Core.Mfs.Time { cs = cp + 1 }) with
      | Error _ -> false
      | Ok o -> Core.Schedule.check o.Core.Mfs.schedule = Ok ())

let random_chained_valid =
  Helpers.qcheck ~count:50 "MFS handles chaining on random DAGs"
    (Helpers.dag_gen ~max_ops:20 ())
    (fun g ->
      let config =
        { Core.Config.default with
          Core.Config.chaining =
            Some
              { Core.Config.prop_delay =
                  Celllib.Ncr.default.Celllib.Library.prop_delay;
                clock = 100. } }
      in
      let cs = Core.Timeframe.min_cs config g in
      match Core.Mfs.run ~config g (Core.Mfs.Time { cs }) with
      | Error _ -> false
      | Ok o -> Core.Schedule.check o.Core.Mfs.schedule = Ok ())

let random_resource_valid =
  Helpers.qcheck ~count:50 "resource-constrained MFS respects limits"
    (Helpers.dag_gen ~max_ops:24 ())
    (fun g ->
      let limits = List.map (fun (c, _) -> (c, 2)) (Dfg.Graph.count_by_class g) in
      match Core.Mfs.run g (Core.Mfs.Resource { limits }) with
      | Error _ -> false
      | Ok o ->
          Core.Schedule.check o.Core.Mfs.schedule = Ok ()
          && List.for_all
               (fun (c, u) ->
                 Option.value ~default:0
                   (List.assoc_opt c (Core.Schedule.fu_counts o.Core.Mfs.schedule))
                 <= u)
               limits)

let suite =
  [
    test "diffeq T=4 matches the known optimum" diffeq_known_optimum;
    test "diffeq T=7 reaches one multiplier" diffeq_relaxed;
    test "tseng matches Table 1 row shapes" tseng_shapes;
    test "classics valid across budgets" classics_valid_across_budgets;
    test "more budget never needs more units" fu_counts_decrease_with_budget;
    test "infeasible budget rejected" infeasible_budget;
    test "empty graph rejected" empty_graph;
    test "user unit limit respected" user_limit_respected;
    test "impossible unit limit reported" user_limit_too_tight;
    test "resource-constrained minimises steps" resource_constrained_makespan;
    test "single-unit resource schedule" resource_constrained_single_units;
    test "multi-cycle multiplication" multicycle_mult;
    test "structural pipelining reduces multipliers" structural_pipelining_reduces_units;
    test "chaining compresses the schedule" chaining_compresses;
    test "functional pipelining folds resources" functional_pipelining;
    test "mutual exclusion saves units" mutex_sharing_saves_units;
    test "local rescheduling grows unit counts" restarts_reported;
    test "near-optimal vs brute force on tiny graphs" near_optimal_on_tiny_graphs;
    test "known optima on the classics" exactly_optimal_on_classics;
    random_dags_valid;
    random_multicycle_valid;
    random_chained_valid;
    random_resource_valid;
  ]
