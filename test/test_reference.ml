(* Equivalence of the array-backed lazy kernel (Core.Mfs over Core.Grid)
   with the frozen seed list-based implementation (Reference.Seed_mfs):
   identical outcomes — starts, columns, offsets, horizon, restart and
   widening counts, and the full Liapunov trace — on random DAGs across the
   configuration space (delays, structural and functional pipelining,
   chaining, conditionals, resource limits). *)

let test name f = Alcotest.test_case name `Quick f

let same_outcome (a : Core.Mfs.outcome) (b : Core.Mfs.outcome) =
  let sa = a.Core.Mfs.schedule and sb = b.Core.Mfs.schedule in
  sa.Core.Schedule.start = sb.Core.Schedule.start
  && sa.Core.Schedule.col = sb.Core.Schedule.col
  && sa.Core.Schedule.offset = sb.Core.Schedule.offset
  && sa.Core.Schedule.cs = sb.Core.Schedule.cs
  && Core.Schedule.makespan sa = Core.Schedule.makespan sb
  && a.Core.Mfs.objective = b.Core.Mfs.objective
  && a.Core.Mfs.restarts = b.Core.Mfs.restarts
  && a.Core.Mfs.widenings = b.Core.Mfs.widenings
  (* Incrementally maintained Liapunov total vs. the seed's full re-fold. *)
  && a.Core.Mfs.energy = b.Core.Mfs.energy
  && Core.Liapunov.Trace.entries a.Core.Mfs.trace
     = Core.Liapunov.Trace.entries b.Core.Mfs.trace

(* Both runs must agree exactly — also on failure messages — and a
   successful run must still satisfy the Liapunov monotonicity the trace
   asserts. *)
let agree ?config ?max_units g spec =
  match
    ( Core.Mfs.run ?config ?max_units g spec,
      Reference.Seed_mfs.run ?config ?max_units g spec )
  with
  | Ok a, Ok b ->
      same_outcome a b && Core.Liapunov.Trace.non_increasing a.Core.Mfs.trace
  | Error e, Error e' -> Diag.message e = e'
  | Ok _, Error e -> Alcotest.failf "only the oracle failed: %s" e
  | Error e, Ok _ ->
      Alcotest.failf "only the kernel failed: %s" (Diag.message e)

let two_cycle_cfg =
  {
    Core.Config.default with
    Core.Config.delays = (function Dfg.Op.Mul | Dfg.Op.Div -> 2 | _ -> 1);
  }

let pipelined_cfg =
  {
    two_cycle_cfg with
    Core.Config.pipelined =
      (function Dfg.Op.Mul | Dfg.Op.Div -> true | _ -> false);
  }

let chain_cfg =
  {
    Core.Config.default with
    Core.Config.chaining =
      Some
        {
          Core.Config.prop_delay =
            Celllib.Ncr.default.Celllib.Library.prop_delay;
          clock = 100.;
        };
  }

let time_spec g slack =
  Core.Mfs.Time { cs = Dfg.Bounds.critical_path g + slack }

let kernel_matches_oracle_time =
  Helpers.qcheck ~count:120 "time-constrained: kernel = seed oracle"
    QCheck2.Gen.(pair (Helpers.dag_gen ()) (int_range 0 3))
    (fun (g, slack) -> agree g (time_spec g slack))

let kernel_matches_oracle_two_cycle =
  Helpers.qcheck ~count:80 "two-cycle multiplies: kernel = seed oracle"
    QCheck2.Gen.(pair (Helpers.wide_dag_gen ()) (int_range 0 3))
    (fun (g, slack) ->
      agree ~config:two_cycle_cfg g
        (Core.Mfs.Time
           { cs = Core.Timeframe.min_cs two_cycle_cfg g + slack }))

let kernel_matches_oracle_pipelined =
  Helpers.qcheck ~count:80 "structural pipelining: kernel = seed oracle"
    QCheck2.Gen.(pair (Helpers.dag_gen ()) (int_range 0 2))
    (fun (g, slack) ->
      agree ~config:pipelined_cfg g
        (Core.Mfs.Time
           { cs = Core.Timeframe.min_cs pipelined_cfg g + slack }))

let kernel_matches_oracle_latency =
  Helpers.qcheck ~count:60 "functional pipelining: kernel = seed oracle"
    QCheck2.Gen.(pair (Helpers.dag_gen ~max_ops:16 ()) (int_range 3 8))
    (fun (g, l) ->
      let config =
        { two_cycle_cfg with Core.Config.functional_latency = Some l }
      in
      agree ~config g (Core.Mfs.Time { cs = Core.Timeframe.min_cs config g }))

let kernel_matches_oracle_chaining =
  Helpers.qcheck ~count:60 "chaining: kernel = seed oracle"
    QCheck2.Gen.(pair (Helpers.dag_gen ~max_ops:16 ()) (int_range 0 2))
    (fun (g, slack) ->
      agree ~config:chain_cfg g
        (Core.Mfs.Time { cs = Core.Timeframe.min_cs chain_cfg g + slack }))

let kernel_matches_oracle_guarded =
  Helpers.qcheck ~count:80 "conditional sharing: kernel = seed oracle"
    QCheck2.Gen.(pair (Helpers.guarded_dag_gen ()) (int_range 0 3))
    (fun (g, slack) -> agree g (time_spec g slack))

let kernel_matches_oracle_resource =
  Helpers.qcheck ~count:100 "resource-constrained: kernel = seed oracle"
    QCheck2.Gen.(triple (Helpers.dag_gen ()) (int_range 1 2) (int_range 1 2))
    (fun (g, mul, add) ->
      agree g (Core.Mfs.Resource { limits = [ ("*", mul); ("+", add) ] })
      && agree g (Core.Mfs.Resource { limits = [] }))

let kernel_matches_oracle_user_limits =
  Helpers.qcheck ~count:80 "user unit limits: kernel = seed oracle"
    QCheck2.Gen.(triple (Helpers.dag_gen ()) (int_range 0 3) (int_range 1 3))
    (fun (g, slack, mul) ->
      agree ~max_units:[ ("*", mul) ] g (time_spec g slack))

let classics_match () =
  List.iter
    (fun (name, g) ->
      let cs = Dfg.Bounds.critical_path g + 1 in
      Alcotest.(check bool)
        (name ^ " schedules identically") true
        (agree g (Core.Mfs.Time { cs })))
    (Workloads.Classic.all ())

let suite =
  [
    kernel_matches_oracle_time;
    kernel_matches_oracle_two_cycle;
    kernel_matches_oracle_pipelined;
    kernel_matches_oracle_latency;
    kernel_matches_oracle_chaining;
    kernel_matches_oracle_guarded;
    kernel_matches_oracle_resource;
    kernel_matches_oracle_user_limits;
    test "classic examples schedule identically" classics_match;
  ]
