let test name f = Alcotest.test_case name `Quick f

let run ?config ?style ?weights ?lib g cs =
  let library = match lib with Some l -> l | None -> Celllib.Ncr.for_graph g in
  let config =
    match config with Some c -> c | None -> Core.Config.of_library library
  in
  Helpers.check_okd "MFSA" (Core.Mfsa.run ~config ?style ?weights ~library ~cs g)

let validate o =
  Helpers.check_schedule o.Core.Mfsa.schedule;
  let g = o.Core.Mfsa.schedule.Core.Schedule.graph in
  let delay i =
    Core.Config.delay o.Core.Mfsa.schedule.Core.Schedule.config
      (Dfg.Graph.node g i).Dfg.Graph.kind
  in
  match
    Rtl.Check.datapath
      ~style2:(o.Core.Mfsa.style = Core.Mfsa.No_self_loop)
      o.Core.Mfsa.datapath ~delay
  with
  | Ok () -> ()
  | Error errs -> Alcotest.failf "datapath invalid: %s" (String.concat "; " (List.map Diag.to_string errs))

let classics_synthesise () =
  List.iter
    (fun (name, g) ->
      let cs = Dfg.Bounds.critical_path g + 1 in
      let o = run g cs in
      validate o;
      Alcotest.(check bool) (name ^ " cost positive") true
        (o.Core.Mfsa.cost.Rtl.Cost.total > 0.))
    (Workloads.Classic.all ())

let energy_is_minimal_choice () =
  let g = Workloads.Classic.diffeq () in
  let o = run g 4 in
  List.iter
    (fun it ->
      Alcotest.(check bool) "chosen <= worst candidate" true
        (it.Core.Mfsa.it_energy <= it.Core.Mfsa.it_worst +. 1e-9))
    o.Core.Mfsa.iterations;
  Alcotest.(check int) "every op placed once"
    (Dfg.Graph.num_nodes g)
    (List.length o.Core.Mfsa.iterations)

let multifunction_alus_emerge () =
  (* diffeq has subtractions and additions near multiplications; a purely
     single-function allocation would cost more. The widening mechanism
     must produce at least one multifunction ALU. *)
  let g = Workloads.Classic.diffeq () in
  let o = run g 4 in
  let multifunction =
    List.exists
      (fun a ->
        Celllib.Op_set.cardinal a.Rtl.Datapath.a_kind.Celllib.Library.ops > 1)
      o.Core.Mfsa.datapath.Rtl.Datapath.alus
  in
  Alcotest.(check bool) "some multifunction ALU" true multifunction

let style2_no_self_loops () =
  List.iter
    (fun (name, g) ->
      let cs = Dfg.Bounds.critical_path g + 1 in
      let o = run ~style:Core.Mfsa.No_self_loop g cs in
      validate o;
      Alcotest.(check (list int)) (name ^ " no self loops") []
        (Rtl.Datapath.self_loop_alus o.Core.Mfsa.datapath))
    (Workloads.Classic.all ())

let style2_costs_more () =
  (* Table 2: style 2 shows a 2-11% overhead over style 1 (one example in
     the paper is 4% the other way; we assert the aggregate direction). *)
  let total_1, total_2 =
    List.fold_left
      (fun (t1, t2) (_, g) ->
        let cs = Dfg.Bounds.critical_path g + 1 in
        let o1 = run g cs in
        let o2 = run ~style:Core.Mfsa.No_self_loop g cs in
        ( t1 +. o1.Core.Mfsa.cost.Rtl.Cost.total,
          t2 +. o2.Core.Mfsa.cost.Rtl.Cost.total ))
      (0., 0.)
      (Workloads.Classic.all ())
  in
  Alcotest.(check bool) "style 2 aggregate overhead positive" true
    (total_2 >= total_1);
  let overhead = (total_2 -. total_1) /. total_1 in
  Alcotest.(check bool) "overhead below 25%" true (overhead < 0.25)

let weights_shift_optimisation () =
  let g = Workloads.Classic.ewf () in
  let cs = Dfg.Bounds.critical_path g + 2 in
  let balanced = run g cs in
  let reg_heavy =
    run
      ~weights:{ Core.Mfsa.equal_weights with Core.Mfsa.w_reg = 50. }
      g cs
  in
  validate reg_heavy;
  Alcotest.(check bool) "register emphasis does not increase registers" true
    (reg_heavy.Core.Mfsa.cost.Rtl.Cost.n_regs
    <= balanced.Core.Mfsa.cost.Rtl.Cost.n_regs)

let restricted_library_missing_kind () =
  let g = Workloads.Classic.diffeq () in
  let lib =
    Celllib.Library.restrict (Celllib.Ncr.for_graph g)
      [ Dfg.Op.Add; Dfg.Op.Sub ]
  in
  let msg =
    Diag.message
      (Helpers.check_errd "no multiplier in library"
         (Core.Mfsa.run ~library:lib ~cs:4 g))
  in
  Alcotest.(check bool) "names the op kind" true (Helpers.contains ~sub:"mul" msg)

let restricted_library_shapes_alus () =
  (* Restrict to single-function units only: no multifunction ALU can
     appear. *)
  let g = Workloads.Classic.diffeq () in
  let lib = Celllib.Ncr.for_graph g in
  let singles =
    { lib with
      Celllib.Library.alus =
        List.filter
          (fun a -> Celllib.Op_set.cardinal a.Celllib.Library.ops = 1)
          lib.Celllib.Library.alus }
  in
  let o = run ~lib:singles g 4 in
  validate o;
  List.iter
    (fun a ->
      Alcotest.(check int) "single function" 1
        (Celllib.Op_set.cardinal a.Rtl.Datapath.a_kind.Celllib.Library.ops))
    o.Core.Mfsa.datapath.Rtl.Datapath.alus

let infeasible_budget () =
  let g = Workloads.Classic.diffeq () in
  let lib = Celllib.Ncr.for_graph g in
  ignore (Helpers.check_errd "cs=2" (Core.Mfsa.run ~library:lib ~cs:2 g))

let empty_graph () =
  let g = Helpers.graph_exn ~inputs:[ "a" ] [] in
  let lib = Celllib.Ncr.default in
  ignore (Helpers.check_errd "empty" (Core.Mfsa.run ~library:lib ~cs:1 g))

let two_cycle_multiplier () =
  let g = Workloads.Classic.dct8 () in
  let lib = Celllib.Ncr.two_cycle_multiplier (Celllib.Ncr.for_graph g) in
  let config = Core.Config.of_library lib in
  let cs = Core.Timeframe.min_cs config g in
  let o = run ~config ~lib g cs in
  validate o

let pipelined_multiplier () =
  let g = Workloads.Classic.dct8 () in
  let lib = Celllib.Ncr.pipelined_multiplier (Celllib.Ncr.for_graph g) in
  let config = Core.Config.of_library lib in
  let cs = Core.Timeframe.min_cs config g in
  let o = run ~config ~lib g cs in
  validate o;
  (* The pipelined library must never need more multiplier instances than
     the two-cycle one. *)
  let lib2 = Celllib.Ncr.two_cycle_multiplier (Celllib.Ncr.for_graph g) in
  let o2 = run ~config:(Core.Config.of_library lib2) ~lib:lib2 g cs in
  let mult_instances o =
    List.length
      (List.filter
         (fun a ->
           Celllib.Op_set.mem Dfg.Op.Mul a.Rtl.Datapath.a_kind.Celllib.Library.ops)
         o.Core.Mfsa.datapath.Rtl.Datapath.alus)
  in
  Alcotest.(check bool) "pipelined needs <= instances" true
    (mult_instances o <= mult_instances o2)

let mutex_ops_share_alu () =
  let g = Workloads.Classic.cond_example () in
  let o = run g (Dfg.Bounds.critical_path g) in
  validate o

let equivalence_on_classics () =
  List.iter
    (fun (name, g) ->
      let cs = Dfg.Bounds.critical_path g + 1 in
      let o = run g cs in
      let delay i =
        Core.Config.delay o.Core.Mfsa.schedule.Core.Schedule.config
          (Dfg.Graph.node g i).Dfg.Graph.kind
      in
      let ctrl =
        Helpers.check_ok "controller"
          (Rtl.Controller.generate o.Core.Mfsa.datapath ~delay)
      in
      match Sim.Equiv.check_random ~runs:10 o.Core.Mfsa.datapath ctrl with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" name (Diag.to_string e))
    (Workloads.Classic.all ())

let functional_pipelining_allocation () =
  (* Folding with latency L: the allocated ALUs must absorb the modulo
     conflicts, and the datapath still checks out. *)
  let g = Workloads.Classic.ar_filter () in
  let lib = Celllib.Ncr.for_graph g in
  let config =
    { (Core.Config.of_library lib) with Core.Config.functional_latency = Some 5 }
  in
  let cs = Dfg.Bounds.critical_path g in
  let o =
    Helpers.check_okd "folded mfsa" (Core.Mfsa.run ~config ~library:lib ~cs g)
  in
  Helpers.check_schedule o.Core.Mfsa.schedule;
  (* 13 multiplications folded into 5 slots need >= 3 mult-capable ALUs. *)
  let mult_capable =
    List.length
      (List.filter
         (fun a ->
           Celllib.Op_set.mem Dfg.Op.Mul a.Rtl.Datapath.a_kind.Celllib.Library.ops)
         o.Core.Mfsa.datapath.Rtl.Datapath.alus)
  in
  Alcotest.(check bool) "folding floor respected" true (mult_capable >= 3)

let resource_mode_minimises_steps () =
  let g = Workloads.Classic.diffeq () in
  let lib = Celllib.Ncr.for_graph g in
  let one_mult =
    Helpers.check_okd "1 mult"
      (Core.Mfsa.run_resource ~library:lib ~limits:[ ("*", 1) ] g)
  in
  validate one_mult;
  (* Six serialised multiplications with the dependent tail: 7 steps. *)
  Alcotest.(check int) "makespan 7" 7
    (Core.Schedule.makespan one_mult.Core.Mfsa.schedule);
  let two_mult =
    Helpers.check_okd "2 mult"
      (Core.Mfsa.run_resource ~library:lib ~limits:[ ("*", 2) ] g)
  in
  Alcotest.(check int) "makespan 4" 4
    (Core.Schedule.makespan two_mult.Core.Mfsa.schedule)

let resource_mode_respects_caps () =
  let g = Workloads.Classic.ewf () in
  let lib = Celllib.Ncr.for_graph g in
  let limits = [ ("*", 1); ("+", 2) ] in
  let o =
    Helpers.check_okd "resource" (Core.Mfsa.run_resource ~library:lib ~limits g)
  in
  validate o;
  List.iter
    (fun (c, cap) ->
      let kind = Option.get (Dfg.Op.of_string c) in
      let capable =
        List.length
          (List.filter
             (fun a ->
               Celllib.Op_set.mem kind a.Rtl.Datapath.a_kind.Celllib.Library.ops)
             o.Core.Mfsa.datapath.Rtl.Datapath.alus)
      in
      Alcotest.(check bool) (c ^ " capable instances within cap") true
        (capable <= cap))
    limits

let resource_mode_cheaper_than_time_mode () =
  (* Fewer units should not cost more silicon than the fast design. *)
  let g = Workloads.Classic.diffeq () in
  let lib = Celllib.Ncr.for_graph g in
  let slow =
    Helpers.check_okd "1 mult"
      (Core.Mfsa.run_resource ~library:lib ~limits:[ ("*", 1) ] g)
  in
  let fast = run g 4 in
  Alcotest.(check bool) "serial design is smaller" true
    (slow.Core.Mfsa.cost.Rtl.Cost.total <= fast.Core.Mfsa.cost.Rtl.Cost.total)

let random_dags_synthesise =
  Helpers.qcheck ~count:40 "MFSA synthesises random DAGs validly"
    (Helpers.dag_gen ~max_ops:20 ())
    (fun g ->
      let lib = Celllib.Ncr.for_graph g in
      let cs = Dfg.Bounds.critical_path g + 1 in
      match Core.Mfsa.run ~library:lib ~cs g with
      | Error _ -> false
      | Ok o -> (
          Core.Schedule.check o.Core.Mfsa.schedule = Ok ()
          &&
          let delay i =
            Core.Config.delay o.Core.Mfsa.schedule.Core.Schedule.config
              (Dfg.Graph.node g i).Dfg.Graph.kind
          in
          match Rtl.Check.datapath o.Core.Mfsa.datapath ~delay with
          | Ok () -> true
          | Error _ -> false))

let random_dags_equivalent =
  Helpers.qcheck ~count:25 "synthesised random DAGs compute the behaviour"
    (Helpers.dag_gen ~max_ops:16 ())
    (fun g ->
      let lib = Celllib.Ncr.for_graph g in
      let cs = Dfg.Bounds.critical_path g + 1 in
      match Core.Mfsa.run ~library:lib ~cs g with
      | Error _ -> false
      | Ok o -> (
          let delay i =
            Core.Config.delay o.Core.Mfsa.schedule.Core.Schedule.config
              (Dfg.Graph.node g i).Dfg.Graph.kind
          in
          match Rtl.Controller.generate o.Core.Mfsa.datapath ~delay with
          | Error _ -> false
          | Ok ctrl ->
              Sim.Equiv.check_random ~runs:5 o.Core.Mfsa.datapath ctrl = Ok ()))

let suite =
  [
    test "all classics synthesise and validate" classics_synthesise;
    test "Liapunov choice is minimal per iteration" energy_is_minimal_choice;
    test "multifunction ALUs emerge" multifunction_alus_emerge;
    test "style 2 has no ALU self loops" style2_no_self_loops;
    test "style 2 aggregate overhead in band" style2_costs_more;
    test "register weight steers the design" weights_shift_optimisation;
    test "missing capability reported" restricted_library_missing_kind;
    test "restricted library respected" restricted_library_shapes_alus;
    test "infeasible budget rejected" infeasible_budget;
    test "empty graph rejected" empty_graph;
    test "two-cycle multiplier library" two_cycle_multiplier;
    test "pipelined multiplier library" pipelined_multiplier;
    test "exclusive ops share an ALU" mutex_ops_share_alu;
    test "functional pipelining through allocation" functional_pipelining_allocation;
    test "resource mode minimises steps" resource_mode_minimises_steps;
    test "resource mode respects capability caps" resource_mode_respects_caps;
    test "resource mode trades time for area" resource_mode_cheaper_than_time_mode;
    test "synthesised classics compute the behaviour" equivalence_on_classics;
    random_dags_synthesise;
    random_dags_equivalent;
  ]
