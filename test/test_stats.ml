let test name f = Alcotest.test_case name `Quick f

let diffeq_stats () =
  let s = Dfg.Stats.compute (Workloads.Classic.diffeq ()) in
  Alcotest.(check int) "ops" 11 s.Dfg.Stats.ops;
  Alcotest.(check int) "inputs" 6 s.Dfg.Stats.inputs;
  Alcotest.(check int) "depth" 4 s.Dfg.Stats.depth;
  Alcotest.(check int) "level_width (asap level 1)" 5 s.Dfg.Stats.level_width;
  Alcotest.(check (float 0.01)) "parallelism" 2.75 s.Dfg.Stats.parallelism;
  Alcotest.(check int) "no guards" 0 s.Dfg.Stats.guarded

let cond_stats () =
  let s = Dfg.Stats.compute (Workloads.Classic.cond_example ()) in
  Alcotest.(check int) "guarded ops" 5 s.Dfg.Stats.guarded

let chain_stats () =
  let s = Dfg.Stats.compute (Helpers.chain4 ()) in
  Alcotest.(check int) "depth = ops" 4 s.Dfg.Stats.depth;
  Alcotest.(check int) "level_width 1" 1 s.Dfg.Stats.level_width;
  Alcotest.(check (float 0.01)) "no parallelism" 1.0 s.Dfg.Stats.parallelism;
  (* Three internal edges in a four-op chain. *)
  Alcotest.(check int) "edges" 3 s.Dfg.Stats.edges

let pp_smoke () =
  let s = Dfg.Stats.compute (Workloads.Classic.ewf ()) in
  let out = Format.asprintf "%a" Dfg.Stats.pp s in
  Alcotest.(check bool) "mentions classes" true
    (Helpers.contains ~sub:"26 +" out)

let width_never_exceeds_ops =
  Helpers.qcheck ~count:60 "level_width and depth bounded by ops"
    (Helpers.dag_gen ())
    (fun g ->
      let s = Dfg.Stats.compute g in
      s.Dfg.Stats.level_width <= s.Dfg.Stats.ops
      && s.Dfg.Stats.depth <= s.Dfg.Stats.ops
      && s.Dfg.Stats.level_width >= 1)

let suite =
  [
    test "diffeq statistics" diffeq_stats;
    test "guard counting" cond_stats;
    test "serial chain statistics" chain_stats;
    test "pp mentions classes" pp_smoke;
    width_never_exceeds_ops;
  ]
