The static analyzer's CLI contract: findings on stdout with stable
lint.* codes, exit 0 on clean/warnings, 3 on bad input, 4 on an
infeasible instance (rejected before MFS/MFSA runs), 5 when an audit of
the produced artefacts finds an internal inconsistency.

A clean design reports its feasibility bounds and the register audit:

  $ printf 'input a b c d\nm1 = mul a b\nm2 = mul c d\ns = add m1 m2\n' > diamond.dfg
  $ ../bin/synth.exe lint diamond.dfg
  critical path: 2 step(s); budget: 2
  FU lower bounds: * >= 1, + >= 1
  registers: 4 used; lower bound 4
  lint: clean

Warnings do not fail the run:

  $ printf 'input a b z\nm = mul a b\n' > dead.dfg
  $ ../bin/synth.exe lint dead.dfg
  critical path: 1 step(s); budget: 1
  FU lower bounds: * >= 1
  registers: 3 used; lower bound 3
  warning[lint.dead-input] primary input "z" is never read
  lint: 0 error(s), 1 warning(s)

--json renders a report object: the findings with their implicated
nodes plus per-pass wall-clock timings (normalized here — wall time is
not reproducible):

  $ ../bin/synth.exe lint dead.dfg --json | sed 's/:[0-9][0-9]*\.[0-9]*/:T/g'
  {"findings":[{"nodes":["z"],"diag":{"code":"lint.dead-input","category":"input","severity":"warning","message":"primary input \"z\" is never read"}}],"timings_ms":{"dfg-lint":T,"feasibility":T,"widths":T,"post-schedule":T,"post-rtl":T}}

--dot-lint overlays the findings on the graph (warning = yellow fill):

  $ ../bin/synth.exe lint dead.dfg --dot-lint
  digraph "dfg" {
    "a" [shape=box];
    "b" [shape=box];
    "z" [shape=box, style=filled, fillcolor="#ffe599"];
    "m" [label="m: *"];
    "a" -> "m";
    "b" -> "m";
  }

A budget below the critical path is rejected up front — exit 4 with no
scheduler run (note: no register audit follows the error):

  $ printf 'input a b\nc1 = add a b\nc2 = add c1 b\nc3 = add c2 b\nc4 = add c3 b\n' > chain.dfg
  $ ../bin/synth.exe lint chain.dfg --cs 2
  critical path: 4 step(s); budget: 2
  FU lower bounds: + >= 2
  error[lint.infeasible-budget] no schedule fits 2 control step(s): the critical path needs 4
  lint: 1 error(s), 0 warning(s)
  [4]

So is a unit cap below the occupancy lower bound (three concurrent
multiplications folded into a 2-step latency horizon need two units):

  $ printf 'input a b\nm1 = mul a b\nm2 = mul a b\nm3 = mul a b\n' > muls.dfg
  $ ../bin/synth.exe lint muls.dfg --limit '*=1' --latency 2
  critical path: 1 step(s)
  FU lower bounds: * >= 2
  error[lint.infeasible-units] class * needs at least 2 unit(s): 3 occupied step-cell(s) in a 2-step horizon, but the cap is 1
  lint: 1 error(s), 0 warning(s)
  [4]

Each fault-injection mode is caught by a static pass (exit 5, internal):

  $ ../bin/synth.exe lint diamond.dfg --inject corrupt-start
  critical path: 2 step(s); budget: 2
  FU lower bounds: * >= 1, + >= 1
  registers: 4 used; lower bound 4
  error[lint.sched-horizon] op s finishes at step 3 past the 2-step horizon
  error[lint.lifetime-horizon] value s is live across boundaries 3..2, outside the 2-step horizon
  lint: 2 error(s), 0 warning(s)
  [5]

  $ ../bin/synth.exe lint diamond.dfg --inject corrupt-col
  critical path: 2 step(s); budget: 2
  FU lower bounds: * >= 1, + >= 1
  registers: 4 used; lower bound 4
  error[lint.fu-conflict] ops m1 and m2 occupy * unit 1 in the same step
  lint: 1 error(s), 0 warning(s)
  [5]

  $ ../bin/synth.exe lint diamond.dfg --inject corrupt-trace
  critical path: 2 step(s); budget: 2
  FU lower bounds: * >= 1, + >= 1
  registers: 4 used; lower bound 4
  error[lint.trace-monotone] Liapunov energy increases along the move trace
  lint: 1 error(s), 0 warning(s)
  [5]

  $ ../bin/synth.exe lint chain.dfg --inject skew-delay
  critical path: 4 step(s); budget: 4
  FU lower bounds: + >= 1
  registers: 2 used; lower bound 2
  error[lint.latch-mismatch] node c1 latches at edge 1 but finishes at step 2 under the delay model
  error[lint.alu-conflict] ALU 0 runs c1 and c2 in overlapping steps
  error[lint.operand-not-ready] c2 reads c1 from reg0 at step 2 but it only latches at edge 2
  lint: 3 error(s), 0 warning(s)
  [5]

Range/width annotations feed the bitwidth analysis; --widths prints the
inferred value-width table. Unannotated values would be top (full
width) — here every input is bounded, so everything narrows:

  $ printf 'input a b\nrange a 0 15\nrange b 0 15\ns = add a b\np = mul s b\n' > narrow.dfg
  $ ../bin/synth.exe lint narrow.dfg --widths
  critical path: 2 step(s); budget: 2
  FU lower bounds: + >= 1, * >= 1
  registers: 2 used; lower bound 2
  value widths (1 pass(es)):
    a                [0, 15]                   5 bit(s)
    b                [0, 15]                   5 bit(s)
    s                [0, 30]                   6 bit(s)
    p                [0, 450]                 10 bit(s)
  lint: clean

A width declaration is a narrowing contract. When the inferred range
lies entirely outside it, every execution overflows — an internal error
(exit 5) caught statically, never first by simulation (the reproducer
also lives in test/corpus/widths/overflow-mov.dfg for the CI gate):

  $ printf 'input a b\nrange a 16 31\nrange b 0 3\ns = mov a\nwidth s 4\np = mul s b\n' > overflow.dfg
  $ ../bin/synth.exe lint overflow.dfg --widths
  critical path: 2 step(s); budget: 2
  FU lower bounds: mov >= 1, * >= 1
  value widths (1 pass(es)):
    a                [16, 31]                  6 bit(s)
    b                [0, 3]                    3 bit(s)
    s                [16, 31]                  6 bit(s)  (declared 4)
    p                [0, 93]                   8 bit(s)
  error[width.overflow] value "s" provably overflows its declared 4-bit width: every value in the inferred range [16, 31] is outside [-8, 7]
  lint: 1 error(s), 0 warning(s)
  [5]

When overflow is possible but not certain, the contract gets a warning
instead — the run still exits 0:

  $ printf 'input a\nrange a 0 31\ns = mov a\nwidth s 4\n' > trunc.dfg
  $ ../bin/synth.exe lint trunc.dfg --widths
  critical path: 1 step(s); budget: 1
  FU lower bounds: mov >= 1
  registers: 1 used; lower bound 1
  value widths (1 pass(es)):
    a                [0, 31]                   6 bit(s)
    s                [0, 31]                   6 bit(s)  (declared 4)
  warning[width.truncation] value "s" may overflow its declared 4-bit width: inferred range [0, 31] exceeds [-8, 7]
  lint: 0 error(s), 1 warning(s)

Bad input stays a bad-input error:

  $ ../bin/synth.exe lint /nonexistent/no-such.dfg
  error: error[io.no-such-input] /nonexistent/no-such.dfg: no such file or built-in example (try ex1..ex6, diffeq, ewf, fir16, dct8, ar, tseng, chained, facet, cond)
  [3]

The mem.* family: memory-bank feasibility, index bounds, and the
post-schedule port audit.

A bank whose access count can never fit through its ports within the
horizon is rejected up front — exit 4, before any scheduler runs:

  $ printf 'input x y z i\nrange i 0 0\narray A 1 bank B\narray C 1 bank B\narray D 1 bank B\nsa = st A i x\nsb = st C i y\nsc = st D i z\nla = ld A i\nlb = ld C i\nlc = ld D i\nt = + la lb\nu = + t lc\n' > doomed.dfg
  $ ../bin/synth.exe lint doomed.dfg --cs 4
  critical path: 4 step(s); budget: 4
  FU lower bounds: mem:B >= 2, + >= 1
  error[mem.infeasible-ports] bank B needs at least 6 step(s) for 6 access(es) through 1 port(s), but the horizon is 4
  lint: 1 error(s), 0 warning(s)
  [4]

A constant index provably outside the array is a bad-input error (the
range analysis sees every access lands out of bounds):

  $ printf 'input x i\nrange i 5 5\narray A 4\nw = st A i x\ny = ld A i\n' > oob.dfg
  $ ../bin/synth.exe lint oob.dfg
  critical path: 2 step(s); budget: 2
  FU lower bounds: mem:A >= 1
  error[mem.index-out-of-bounds] access "w" indexes "A"[i] outside 0..3: the index range is [5, 5]
  error[mem.index-out-of-bounds] access "y" indexes "A"[i] outside 0..3: the index range is [5, 5]
  lint: 2 error(s), 0 warning(s)
  [3]

A planted port collision is an internal defect — the schedule audit
re-derives a first-fit port binding and finds the bank oversubscribed:

  $ printf 'input u i0 i1\nrange i0 0 0\nrange i1 1 1\narray S 2 bank SB\nmem SB ports 1\ns1 = ld S i0\ns2 = ld S i1\nt = + s1 u\ny = + t s2\n' > planted.dfg
  $ ../bin/synth.exe lint planted.dfg
  critical path: 3 step(s); budget: 3
  FU lower bounds: mem:SB >= 1, + >= 1
  registers: 3 used; lower bound 3
  lint: clean
  $ ../bin/synth.exe lint planted.dfg --inject collide-mem
  critical path: 3 step(s); budget: 3
  FU lower bounds: mem:SB >= 1, + >= 1
  registers: 3 used; lower bound 3
  error[lint.fu-conflict] ops s1 and s2 occupy mem:SB unit 1 in the same step
  error[mem.bank-conflict] bank SB needs 2 concurrent port(s) in this schedule but offers 1
  lint: 2 error(s), 0 warning(s)
  [5]
