let test name f = Alcotest.test_case name `Quick f
let op = Helpers.op

let diffeq_duplicate_removed () =
  (* HAL's diff-eq computes u*dx twice (m2 and m6). *)
  let g = Workloads.Classic.diffeq () in
  Alcotest.(check int) "one saving" 1 (Dfg.Cse.savings g);
  let g' = Helpers.check_ok "cse" (Dfg.Cse.eliminate g) in
  Alcotest.(check int) "10 ops left" 10 (Dfg.Graph.num_nodes g');
  (* Consumers of the removed duplicate read the kept node. *)
  let a2 = Option.get (Dfg.Graph.find g' "a2") in
  Alcotest.(check (list string)) "a2 rewired" [ "y"; "m2" ] a2.Dfg.Graph.args

let commutative_duplicates () =
  let g =
    Helpers.graph_exn ~inputs:[ "a"; "b" ]
      [
        op "x" Dfg.Op.Add [ "a"; "b" ];
        op "y" Dfg.Op.Add [ "b"; "a" ];
        op "z" Dfg.Op.Mul [ "x"; "y" ];
      ]
  in
  let g' = Helpers.check_ok "cse" (Dfg.Cse.eliminate g) in
  Alcotest.(check int) "add merged" 2 (Dfg.Graph.num_nodes g');
  let z = Option.get (Dfg.Graph.find g' "z") in
  Alcotest.(check (list string)) "z squares x" [ "x"; "x" ] z.Dfg.Graph.args

let noncommutative_kept () =
  let g =
    Helpers.graph_exn ~inputs:[ "a"; "b" ]
      [ op "x" Dfg.Op.Sub [ "a"; "b" ]; op "y" Dfg.Op.Sub [ "b"; "a" ] ]
  in
  Alcotest.(check int) "no savings" 0 (Dfg.Cse.savings g)

let guard_contexts_respected () =
  (* Same computation under different guards must NOT merge (that is
     Mutex.merge_shared's job, with different semantics). *)
  let g = Workloads.Classic.cond_example () in
  let g' = Helpers.check_ok "cse" (Dfg.Cse.eliminate g) in
  Alcotest.(check int) "t1/t2 survive CSE" (Dfg.Graph.num_nodes g)
    (Dfg.Graph.num_nodes g')

let chains_collapse () =
  (* x2 duplicates x1; y2 consumes x2 and duplicates y1 after rewiring. *)
  let g =
    Helpers.graph_exn ~inputs:[ "a"; "b" ]
      [
        op "x1" Dfg.Op.Add [ "a"; "b" ];
        op "x2" Dfg.Op.Add [ "a"; "b" ];
        op "y1" Dfg.Op.Mul [ "x1"; "a" ];
        op "y2" Dfg.Op.Mul [ "x2"; "a" ];
        op "z" Dfg.Op.Sub [ "y1"; "y2" ];
      ]
  in
  let g' = Helpers.check_ok "cse" (Dfg.Cse.eliminate g) in
  Alcotest.(check int) "fixpoint collapses the chain" 3 (Dfg.Graph.num_nodes g')

let semantics_preserved =
  Helpers.qcheck ~count:60 "CSE preserves every surviving value"
    (Helpers.dag_gen ())
    (fun g ->
      match Dfg.Cse.eliminate g with
      | Error _ -> false
      | Ok g' -> (
          let env = List.mapi (fun i v -> (v, (i * 13 mod 17) - 8)) (Dfg.Graph.inputs g) in
          match (Sim.Eval.run g env, Sim.Eval.run g' env) with
          | Ok v1, Ok v2 ->
              List.for_all
                (fun nd ->
                  Sim.Eval.value v2 nd.Dfg.Graph.name
                  = Sim.Eval.value v1 nd.Dfg.Graph.name)
                (Dfg.Graph.nodes g')
          | _ -> false))

let idempotent =
  Helpers.qcheck ~count:60 "CSE is idempotent"
    (Helpers.dag_gen ())
    (fun g ->
      match Dfg.Cse.eliminate g with
      | Error _ -> false
      | Ok g' -> Dfg.Cse.savings g' = 0)

let frontend_then_cse () =
  (* The front end does not CSE; the pass catches the duplicated u*dx. *)
  let src = "input u, dx, y;\na = u * dx + y;\nb = u * dx - y;\n" in
  let g = Helpers.check_okd "compile" (Dfg.Frontend.compile src) in
  Alcotest.(check int) "one duplicate" 1 (Dfg.Cse.savings g)

let suite =
  [
    test "diffeq's duplicate u*dx removed" diffeq_duplicate_removed;
    test "commutative duplicates merge" commutative_duplicates;
    test "non-commutative order respected" noncommutative_kept;
    test "guard contexts respected" guard_contexts_respected;
    test "duplicate chains collapse at the fixpoint" chains_collapse;
    semantics_preserved;
    idempotent;
    test "front-end output benefits from CSE" frontend_then_cse;
  ]
