let test name f = Alcotest.test_case name `Quick f

let cfg = Core.Config.default

let mk ?col ?config g ~cs start =
  Core.Schedule.make ?col
    ~config:(Option.value ~default:cfg config)
    ~cs g (Array.of_list start)

let valid_diamond () =
  let g = Helpers.diamond () in
  let s = mk g ~cs:2 [ 1; 1; 2 ] ~col:[| 1; 2; 1 |] in
  Helpers.check_schedule s;
  Alcotest.(check int) "makespan" 2 (Core.Schedule.makespan s);
  Alcotest.(check (list (pair string int))) "fu counts" [ ("*", 2); ("+", 1) ]
    (Core.Schedule.fu_counts s)

let precedence_violation () =
  let g = Helpers.diamond () in
  let s = mk g ~cs:2 [ 1; 2; 2 ] ~col:[| 1; 1; 1 |] in
  let errs = Helpers.check_err "precedence" (Core.Schedule.check s) in
  Alcotest.(check bool) "mentions precedence" true
    (List.exists (Helpers.contains ~sub:"precedence") errs)

let horizon_violation () =
  let g = Helpers.diamond () in
  let s = mk g ~cs:1 [ 1; 1; 2 ] ~col:[| 1; 2; 1 |] in
  let errs = Helpers.check_err "horizon" (Core.Schedule.check s) in
  Alcotest.(check bool) "mentions horizon" true
    (List.exists (Helpers.contains ~sub:"horizon") errs)

let start_below_one () =
  let g = Helpers.diamond () in
  let s = mk g ~cs:2 [ 0; 1; 2 ] ~col:[| 1; 2; 1 |] in
  let errs = Helpers.check_err "start" (Core.Schedule.check s) in
  Alcotest.(check bool) "start < 1 caught" true
    (List.exists (Helpers.contains ~sub:"< 1") errs)

let fu_conflict () =
  let g = Helpers.diamond () in
  let s = mk g ~cs:2 [ 1; 1; 2 ] ~col:[| 1; 1; 1 |] in
  let errs = Helpers.check_err "conflict" (Core.Schedule.check s) in
  Alcotest.(check bool) "FU conflict caught" true
    (List.exists (Helpers.contains ~sub:"FU conflict") errs)

let multicycle_conflict () =
  let config =
    { cfg with Core.Config.delays = (function Dfg.Op.Mul -> 2 | _ -> 1) }
  in
  let g = Helpers.diamond () in
  (* m1 occupies steps 1-2; m2 starting at 2 on the same unit clashes. *)
  let s = mk ~config g ~cs:4 [ 1; 2; 4 ] ~col:[| 1; 1; 1 |] in
  let errs = Helpers.check_err "mc conflict" (Core.Schedule.check s) in
  Alcotest.(check bool) "overlap caught" true
    (List.exists (Helpers.contains ~sub:"FU conflict") errs);
  (* On separate units it is fine. *)
  let ok = mk ~config g ~cs:4 [ 1; 2; 4 ] ~col:[| 1; 2; 1 |] in
  Helpers.check_schedule ok

let latency_conflict () =
  let config = { cfg with Core.Config.functional_latency = Some 2 } in
  let g =
    Helpers.graph_exn ~inputs:[ "a"; "b" ]
      [
        Helpers.op "m1" Dfg.Op.Mul [ "a"; "b" ];
        Helpers.op "m2" Dfg.Op.Mul [ "m1"; "b" ];
      ]
  in
  (* Steps 1 and 3 fold together under latency 2. *)
  let bad = mk ~config g ~cs:3 [ 1; 3 ] ~col:[| 1; 1 |] in
  let errs = Helpers.check_err "folded clash" (Core.Schedule.check bad) in
  Alcotest.(check bool) "caught" true
    (List.exists (Helpers.contains ~sub:"FU conflict") errs);
  let good = mk ~config g ~cs:3 [ 1; 3 ] ~col:[| 1; 2 |] in
  Helpers.check_schedule good

let mutex_overlap_allowed () =
  let g = Workloads.Classic.cond_example () in
  let id n = (Option.get (Dfg.Graph.find g n)).Dfg.Graph.id in
  let n = Dfg.Graph.num_nodes g in
  let start = Array.make n 0 and col = Array.make n 1 in
  start.(id "c1") <- 1;
  (* exclusive adds share step 2 and the same adder *)
  start.(id "t1") <- 2;
  start.(id "t2") <- 2;
  start.(id "t3") <- 3;
  start.(id "t4") <- 3;
  start.(id "t5") <- 3;
  col.(id "t5") <- 1;
  col.(id "t3") <- 1;
  (* t3 is mul, t5 is mul, both col 1 but exclusive -> allowed *)
  let s = Core.Schedule.make ~col ~config:cfg ~cs:3 g start in
  Helpers.check_schedule s;
  (* With sharing disabled the same schedule is rejected. *)
  let no_share = { cfg with Core.Config.share_mutex = false } in
  let s2 = Core.Schedule.make ~col ~config:no_share ~cs:3 g start in
  let errs = Helpers.check_err "no sharing" (Core.Schedule.check s2) in
  Alcotest.(check bool) "conflict without sharing" true (errs <> [])

let chaining_precedence () =
  let chaining =
    Some
      {
        Core.Config.prop_delay = (fun _ -> 40.);
        clock = 100.;
      }
  in
  let config = { cfg with Core.Config.chaining } in
  let g = Helpers.chain4 () in
  (* c1,c2 chained in step 1 (on two adders in series); c3,c4 in step 2. *)
  let s =
    Core.Schedule.make ~col:[| 1; 2; 1; 2 |]
      ~offset:[| 0.; 40.; 0.; 40. |] ~config ~cs:2 g [| 1; 1; 2; 2 |]
  in
  Helpers.check_schedule s

let chaining_offset_violation () =
  let chaining =
    Some { Core.Config.prop_delay = (fun _ -> 40.); clock = 100. }
  in
  let config = { cfg with Core.Config.chaining } in
  let g = Helpers.chain4 () in
  (* Three chained adds need 120 ns > 100 ns clock. *)
  let s =
    Core.Schedule.make ~col:[| 1; 2; 3; 1 |]
      ~offset:[| 0.; 40.; 80.; 0. |] ~config ~cs:2 g [| 1; 1; 1; 2 |]
  in
  let errs = Helpers.check_err "over-chained" (Core.Schedule.check s) in
  Alcotest.(check bool) "precedence rejected" true
    (List.exists (Helpers.contains ~sub:"precedence") errs)

let fu_counts_without_cols () =
  let g = Helpers.diamond () in
  let s = mk g ~cs:2 [ 1; 1; 2 ] in
  Alcotest.(check (list (pair string int))) "concurrency-based" [ ("*", 2); ("+", 1) ]
    (Core.Schedule.fu_counts s)

let fu_counts_mutex_share () =
  let g = Workloads.Classic.cond_example () in
  let id n = (Option.get (Dfg.Graph.find g n)).Dfg.Graph.id in
  let n = Dfg.Graph.num_nodes g in
  let start = Array.make n 3 in
  start.(id "c1") <- 1;
  start.(id "t1") <- 2;
  start.(id "t2") <- 2;
  let s = Core.Schedule.make ~config:cfg ~cs:3 g start in
  (* t1/t2 are exclusive adds in the same step: one adder suffices. *)
  Alcotest.(check (option int)) "one adder" (Some 1)
    (List.assoc_opt "+" (Core.Schedule.fu_counts s))

let check_diag_reports () =
  let g = Helpers.diamond () in
  let s = mk g ~cs:2 [ 1; 2; 2 ] ~col:[| 1; 1; 1 |] in
  let d = Helpers.check_errd "check_diag" (Core.Schedule.check_diag s) in
  Alcotest.(check string) "code" "schedule.invalid" d.Diag.code;
  Alcotest.(check bool) "internal" true (Diag.is_bug d)

let pp_smoke () =
  let g = Helpers.diamond () in
  let s = mk g ~cs:2 [ 1; 1; 2 ] ~col:[| 1; 2; 1 |] in
  let out = Format.asprintf "%a" Core.Schedule.pp s in
  Alcotest.(check bool) "mentions m1" true (Helpers.contains ~sub:"m1" out)

let suite =
  [
    test "valid diamond accepted" valid_diamond;
    test "precedence violation caught" precedence_violation;
    test "horizon violation caught" horizon_violation;
    test "start below step 1 caught" start_below_one;
    test "FU conflict caught" fu_conflict;
    test "multi-cycle occupancy conflicts" multicycle_conflict;
    test "functional-latency folding conflicts" latency_conflict;
    test "mutually exclusive ops may overlap" mutex_overlap_allowed;
    test "chained schedule accepted" chaining_precedence;
    test "chaining beyond the clock rejected" chaining_offset_violation;
    test "fu_counts without binding" fu_counts_without_cols;
    test "fu_counts packs exclusive ops" fu_counts_mutex_share;
    test "check_exn raises Failure" check_diag_reports;
    test "pp renders op names" pp_smoke;
  ]
