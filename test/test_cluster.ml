open Cluster
module Retry = Batch.Retry
module Jsonl = Batch.Jsonl
module Pool = Batch.Pool

let () = Sys.set_signal Sys.sigpipe Sys.Signal_ignore
let test name f = Alcotest.test_case name `Quick f

let tmp name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "mfs-cluster-%d-%s" (Unix.getpid ()) name)

(* --- Retry policy (shared backoff shape) --------------------------------- *)

let retry_backoff_bounds () =
  let p = Retry.backoff ~max_attempts:5 ~base_delay:0.1 ~max_delay:1.0 () in
  let rng = Random.State.make [| 42 |] in
  let prev = ref 0. in
  for _ = 1 to 200 do
    let d = Retry.next_delay p ~rng ~prev:!prev in
    Alcotest.(check bool) "at least base" true (d >= 0.1);
    Alcotest.(check bool) "under cap + base" true (d <= 1.0 +. 0.1);
    prev := d
  done

let retry_exhausted () =
  let p = Retry.backoff ~max_attempts:3 () in
  Alcotest.(check bool) "attempt 2 ok" false (Retry.exhausted p ~attempt:2);
  Alcotest.(check bool) "attempt 3 done" true (Retry.exhausted p ~attempt:3);
  let f = Retry.forever () in
  Alcotest.(check bool) "forever" false (Retry.exhausted f ~attempt:1_000_000)

(* --- Lease state machine ------------------------------------------------- *)

let lease_config =
  {
    Lease.retry = Retry.backoff ~max_attempts:3 ~base_delay:0.01 ~max_delay:0.05 ();
    grace = 1.0;
    heartbeat_window = 1.0;
    warmup = 0.5;
  }

let table ?(now = 1000.) () = Lease.create ~config:lease_config ~now ()

let grants actions =
  List.filter_map
    (function
      | Lease.Grant { a_worker; a_job; a_epoch; _ } ->
          Some (a_worker, a_job, a_epoch)
      | _ -> None)
    actions

let locals actions =
  List.filter_map
    (function Lease.Run_local { a_job; _ } -> Some a_job | _ -> None)
    actions

let lease_grant_and_accept () =
  let t = table () in
  Lease.register t ~now:1000. ~name:"w0" ~capacity:2 ~libraries:[];
  Lease.submit t ~now:1000. ~id:"j1" ~attempt:1 ~deadline:5.0 ~remote:true;
  match grants (Lease.tick t ~now:1000.1 ~local_ok:true) with
  | [ (w, j, epoch) ] ->
      Alcotest.(check string) "worker" "w0" w;
      Alcotest.(check string) "job" "j1" j;
      (match Lease.result t ~worker:"w0" ~job:"j1" ~epoch with
      | `Accept -> ()
      | _ -> Alcotest.fail "result should be accepted");
      Alcotest.(check int) "pending drains" 0 (Lease.pending t);
      (* Second delivery of the same result: fenced, not re-journaled. *)
      (match Lease.result t ~worker:"w0" ~job:"j1" ~epoch with
      | `Stale -> ()
      | _ -> Alcotest.fail "duplicate must be stale");
      Alcotest.(check int) "fenced counted" 1 (Lease.fenced t)
  | gs -> Alcotest.failf "expected one grant, got %d" (List.length gs)

let lease_fencing_stale_epoch () =
  let t = table () in
  Lease.register t ~now:1000. ~name:"w0" ~capacity:1 ~libraries:[];
  Lease.register t ~now:1000. ~name:"w1" ~capacity:1 ~libraries:[];
  Lease.submit t ~now:1000. ~id:"j1" ~attempt:1 ~deadline:5.0 ~remote:true;
  let epoch0 =
    match grants (Lease.tick t ~now:1000.1 ~local_ok:true) with
    | [ (_, _, e) ] -> e
    | _ -> Alcotest.fail "want one grant"
  in
  (* The holder goes silent; its lease fails over to the other worker. *)
  let holder =
    match Lease.epoch_of t ~job:"j1" with
    | Some _ -> (
        match grants (Lease.tick t ~now:1000.2 ~local_ok:true) with
        | [] -> "w0" (* still leased; find holder via disconnect below *)
        | _ -> Alcotest.fail "no second grant while leased")
    | None -> Alcotest.fail "job unknown"
  in
  ignore holder;
  Lease.disconnect t ~now:1000.3 ~name:"w0";
  Lease.disconnect t ~now:1000.3 ~name:"w1";
  Lease.register t ~now:1000.4 ~name:"w2" ~capacity:1 ~libraries:[];
  let epoch1 =
    match grants (Lease.tick t ~now:1001.0 ~local_ok:true) with
    | [ ("w2", "j1", e) ] -> e
    | _ -> Alcotest.fail "want re-lease to w2"
  in
  Alcotest.(check bool) "epoch bumped" true (epoch1 > epoch0);
  (* The first holder's late result carries the old epoch: discard. *)
  (match Lease.result t ~worker:"w0" ~job:"j1" ~epoch:epoch0 with
  | `Stale -> ()
  | _ -> Alcotest.fail "stale epoch must be fenced");
  Alcotest.(check int) "still pending" 1 (Lease.pending t);
  (match Lease.result t ~worker:"w2" ~job:"j1" ~epoch:epoch1 with
  | `Accept -> ()
  | _ -> Alcotest.fail "current lease result accepted");
  Alcotest.(check int) "one fenced" 1 (Lease.fenced t)

let lease_expiry_rescinds () =
  let t = table () in
  Lease.register t ~now:1000. ~name:"w0" ~capacity:1 ~libraries:[];
  Lease.submit t ~now:1000. ~id:"j1" ~attempt:1 ~deadline:2.0 ~remote:true;
  ignore (Lease.tick t ~now:1000.1 ~local_ok:true);
  (* Keep the worker heartbeat-alive but never finishing: slow loris. *)
  Lease.heartbeat t ~now:1003.0 ~name:"w0";
  let actions = Lease.tick t ~now:1003.2 ~local_ok:true in
  let rescinds =
    List.filter_map
      (function
        | Lease.Rescind { a_job; _ } -> Some a_job | _ -> None)
      actions
  in
  Alcotest.(check (list string)) "rescinded" [ "j1" ] rescinds;
  Alcotest.(check int) "release counted" 1 (Lease.releases t)

let lease_heartbeat_death_requeues () =
  let t = table () in
  Lease.register t ~now:1000. ~name:"w0" ~capacity:1 ~libraries:[];
  Lease.register t ~now:1000. ~name:"w1" ~capacity:1 ~libraries:[];
  Lease.submit t ~now:1000. ~id:"j1" ~attempt:1 ~deadline:9.0 ~remote:true;
  let first =
    match grants (Lease.tick t ~now:1000.1 ~local_ok:true) with
    | [ (w, _, _) ] -> w
    | _ -> Alcotest.fail "want one grant"
  in
  let other = if first = "w0" then "w1" else "w0" in
  (* Only the idle worker heartbeats; the holder goes silent. *)
  Lease.heartbeat t ~now:1001.0 ~name:other;
  Lease.heartbeat t ~now:1001.5 ~name:other;
  let actions = Lease.tick t ~now:1001.6 ~local_ok:true in
  let expired =
    List.filter_map
      (function Lease.Expire w -> Some w | _ -> None)
      actions
  in
  Alcotest.(check (list string)) "holder expired" [ first ] expired;
  Alcotest.(check int) "death counted" 1 (Lease.worker_deaths t);
  (* Backoff elapses; the job must land on the survivor. *)
  match grants (Lease.tick t ~now:1002.0 ~local_ok:true) with
  | [ (w, "j1", _) ] -> Alcotest.(check string) "failover" other w
  | gs -> Alcotest.failf "expected failover grant, got %d" (List.length gs)

let lease_exhaustion_goes_local () =
  let t = table () in
  Lease.submit t ~now:1000. ~id:"j1" ~attempt:1 ~deadline:5.0 ~remote:true;
  (* Lose the lease max_attempts times; each loss needs a live worker. *)
  let now = ref 1000.1 in
  for _ = 1 to 3 do
    Lease.register t ~now:!now ~name:"w" ~capacity:1 ~libraries:[];
    (match grants (Lease.tick t ~now:!now ~local_ok:true) with
    | [ _ ] -> ()
    | gs ->
        (* Backoff may defer the grant; advance time until it fires. *)
        if gs = [] then begin
          now := !now +. 0.2;
          match grants (Lease.tick t ~now:!now ~local_ok:true) with
          | [ _ ] -> ()
          | _ -> Alcotest.fail "expected a (re-)grant"
        end);
    Lease.disconnect t ~now:!now ~name:"w";
    now := !now +. 0.2
  done;
  (* Tries exhausted: even with a fresh live worker the job escalates to
     the local pool. *)
  Lease.register t ~now:!now ~name:"w9" ~capacity:4 ~libraries:[];
  now := !now +. 0.2;
  (match locals (Lease.tick t ~now:!now ~local_ok:true) with
  | [ "j1" ] -> ()
  | _ -> Alcotest.fail "expected local escalation");
  Lease.local_done t ~job:"j1";
  Alcotest.(check int) "done" 0 (Lease.pending t)

let lease_no_workers_local_after_warmup () =
  let t = table ~now:1000. () in
  Lease.submit t ~now:1000. ~id:"j1" ~attempt:1 ~deadline:5.0 ~remote:true;
  Alcotest.(check (list string)) "warmup holds the job" []
    (locals (Lease.tick t ~now:1000.2 ~local_ok:true));
  Alcotest.(check (list string)) "past warmup goes local" [ "j1" ]
    (locals (Lease.tick t ~now:1000.6 ~local_ok:true))

let lease_local_forbidden_waits () =
  let t = table ~now:1000. () in
  Lease.submit t ~now:1000. ~id:"j1" ~attempt:1 ~deadline:5.0 ~remote:true;
  Alcotest.(check (list string)) "no local fallback" []
    (locals (Lease.tick t ~now:1002.0 ~local_ok:false));
  Alcotest.(check int) "still pending" 1 (Lease.pending t)

let lease_wireless_job_runs_local () =
  let t = table ~now:1000. () in
  Lease.register t ~now:1000. ~name:"w0" ~capacity:8 ~libraries:[];
  Lease.submit t ~now:1000. ~id:"fuzz" ~attempt:1 ~deadline:5.0 ~remote:false;
  let actions = Lease.tick t ~now:1000.1 ~local_ok:true in
  Alcotest.(check (list string)) "local immediately" [ "fuzz" ]
    (locals actions);
  Alcotest.(check int) "no grants" 0 (List.length (grants actions))

(* --- Wire round-trips ---------------------------------------------------- *)

let wire_manifest_roundtrip () =
  let entry =
    match
      Batch.Manifest.parse_line ~file:"t" ~line:1 "diffeq --cs 4 --inject hang"
    with
    | Ok (Some e) -> e
    | _ -> Alcotest.fail "parse_line"
  in
  let budgets =
    { Harness.Driver.default_budgets with Harness.Driver.stage_seconds = 2.0 }
  in
  let job = Batch.Jobs.of_entry ~budgets ~seed:7 entry in
  let wire = Wire.of_entry ~stage_seconds:2.0 ~seed:7 entry in
  match Wire.to_job wire with
  | Error d -> Alcotest.fail (Diag.to_string d)
  | Ok rebuilt ->
      Alcotest.(check string) "id stable across the wire" job.Pool.id
        rebuilt.Pool.id;
      Alcotest.(check string) "descr stable" job.Pool.descr rebuilt.Pool.descr;
      Alcotest.(check int) "seed stable" job.Pool.seed rebuilt.Pool.seed

let wire_explore_roundtrip () =
  let graph =
    match Workloads.Classic.by_name "diffeq" with
    | Some g -> g
    | None -> Alcotest.fail "builtin diffeq"
  in
  let spec_text = "graph diffeq\ncs 4 6\nweights 1/1/1/20\n" in
  let spec =
    match Explore.Spec.parse ~file:"t" spec_text with
    | Ok s -> s
    | Error d -> Alcotest.fail (Diag.to_string d)
  in
  let points = Explore.Lattice.expand spec in
  Alcotest.(check bool) "some points" true (points <> []);
  List.iter
    (fun p ->
      let job = Explore.Lattice.job ~graph p in
      let wire = Explore.Lattice.wire ~graph p in
      match Explore.Lattice.job_of_wire wire with
      | Error e -> Alcotest.fail e
      | Ok rebuilt ->
          Alcotest.(check string) "key digest stable" job.Pool.id
            rebuilt.Pool.id)
    points

let wire_rejects_garbage () =
  (match Wire.to_job (Jsonl.Obj [ ("family", Jsonl.String "nope") ]) with
  | Error d -> Alcotest.(check string) "code" "cluster.bad-wire" d.Diag.code
  | Ok _ -> Alcotest.fail "unknown family must fail");
  match Wire.to_job (Jsonl.Obj []) with
  | Error d -> Alcotest.(check string) "code" "cluster.bad-wire" d.Diag.code
  | Ok _ -> Alcotest.fail "missing family must fail"

(* --- Endpoints ----------------------------------------------------------- *)

let endpoint_parse () =
  (match Endpoint.parse "tcp:9000" with
  | Ok (Endpoint.Tcp 9000) -> ()
  | _ -> Alcotest.fail "tcp:9000");
  (match Endpoint.parse "/tmp/x.sock" with
  | Ok (Endpoint.Unix_path "/tmp/x.sock") -> ()
  | _ -> Alcotest.fail "unix path");
  (match Endpoint.parse "tcp:0" with
  | Error d -> Alcotest.(check string) "code" "cluster.endpoint" d.Diag.code
  | Ok _ -> Alcotest.fail "tcp:0 must fail");
  match Endpoint.parse_list "a.sock, tcp:7001 ,," with
  | Ok [ Endpoint.Unix_path "a.sock"; Endpoint.Tcp 7001 ] -> ()
  | _ -> Alcotest.fail "list with blanks"

(* --- Client reconnect backoff -------------------------------------------- *)

let client_reports_attempts () =
  let path = tmp "absent.sock" in
  let backoff =
    Retry.backoff ~max_attempts:3 ~base_delay:0.005 ~max_delay:0.01 ()
  in
  match Serve.Client.connect ~timeout:2.0 ~backoff path with
  | Ok _ -> Alcotest.fail "connect to absent socket must fail"
  | Error d ->
      Alcotest.(check string) "code" "serve.connect" d.Diag.code;
      Alcotest.(check bool)
        (Printf.sprintf "message reports attempts: %s" d.Diag.message)
        true
        (let needle = "after 3 attempt" in
         let m = d.Diag.message in
         let nl = String.length needle and ml = String.length m in
         let rec has i =
           i + nl <= ml && (String.sub m i nl = needle || has (i + 1))
         in
         has 0)

(* --- Dispatcher end-to-end (no remote workers needed) -------------------- *)

let dispatcher_pure_local_run () =
  let mk id =
    Pool.job ~id ~seed:0 ~descr:id (fun () -> Ok "{\"status\":\"clean\"}")
  in
  match
    Dispatcher.run ~deadline:10.0
      [ (mk "a", None); (mk "b", None); (mk "c", None) ]
  with
  | Error d -> Alcotest.fail (Diag.to_string d)
  | Ok (o, t) ->
      Alcotest.(check int) "all records" 3 (List.length o.Pool.records);
      Alcotest.(check int) "all local" 3 (Dispatcher.local_runs t);
      Alcotest.(check int) "none remote" 0 (Dispatcher.remote_runs t);
      Alcotest.(check bool) "not interrupted" false o.Pool.interrupted

let dispatcher_resume_replays () =
  let journal = tmp "dispatcher.jsonl" in
  (try Sys.remove journal with Sys_error _ -> ());
  let mk id =
    Pool.job ~id ~seed:0 ~descr:id (fun () -> Ok "{\"status\":\"clean\"}")
  in
  let jobs = [ (mk "a", None); (mk "b", None) ] in
  (match Dispatcher.run ~journal ~deadline:10.0 jobs with
  | Error d -> Alcotest.fail (Diag.to_string d)
  | Ok (o, _) -> Alcotest.(check int) "cold run" 2 (List.length o.Pool.records));
  let before =
    let ic = open_in_bin journal in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  (match Dispatcher.run ~journal ~resume:true ~deadline:10.0 jobs with
  | Error d -> Alcotest.fail (Diag.to_string d)
  | Ok (o, t) ->
      Alcotest.(check int) "all resumed" 2 o.Pool.resumed;
      Alcotest.(check int) "nothing ran" 0 (Dispatcher.completed t));
  let after =
    let ic = open_in_bin journal in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  Alcotest.(check string) "journal byte-identical" before after;
  try Sys.remove journal with Sys_error _ -> ()

(* --- Chaos (one real fan-out with planted faults) ------------------------ *)

let chaos_small_cluster () =
  let cfg =
    {
      (Chaos.default_config ~dir:(tmp "chaos")) with
      Chaos.workers = 2;
      jobs = 5;
      deadline = 3.0;
      stage_seconds = 1.0;
      kill_worker = true;
      duplicate = true;
    }
  in
  match Chaos.run cfg with
  | Error d -> Alcotest.fail (Diag.to_string d)
  | Ok report ->
      List.iter
        (fun (c : Chaos.check) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s" c.Chaos.k_name c.Chaos.k_detail)
            true c.Chaos.k_pass)
        report.Chaos.checks

let suite =
  [
    test "retry: backoff delays stay in [base, cap+base]" retry_backoff_bounds;
    test "retry: exhaustion counts attempts" retry_exhausted;
    test "lease: grant, accept, duplicate fenced" lease_grant_and_accept;
    test "lease: stale epoch fenced after failover" lease_fencing_stale_epoch;
    test "lease: expiry rescinds a slow-loris lease" lease_expiry_rescinds;
    test "lease: heartbeat death requeues to survivor"
      lease_heartbeat_death_requeues;
    test "lease: exhausted tries escalate to local"
      lease_exhaustion_goes_local;
    test "lease: empty cluster goes local after warmup"
      lease_no_workers_local_after_warmup;
    test "lease: local_ok=false keeps the job queued"
      lease_local_forbidden_waits;
    test "lease: wire-less jobs never leave the host"
      lease_wireless_job_runs_local;
    test "wire: manifest job id survives the wire" wire_manifest_roundtrip;
    test "wire: explore point key survives the wire" wire_explore_roundtrip;
    test "wire: garbage rejected with typed code" wire_rejects_garbage;
    test "endpoint: parse forms and errors" endpoint_parse;
    test "client: connect error reports attempt count"
      client_reports_attempts;
    test "dispatcher: no endpoints degenerates to local pool"
      dispatcher_pure_local_run;
    test "dispatcher: resume replays without re-running"
      dispatcher_resume_replays;
    test "chaos: kill -9 mid-lease loses nothing" chaos_small_cluster;
  ]
