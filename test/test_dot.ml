let test name f = Alcotest.test_case name `Quick f

let graph_export () =
  let g = Helpers.diamond () in
  let dot = Dfg.Dot.of_graph ~name:"demo" g in
  List.iter
    (fun sub ->
      Alcotest.(check bool) (sub ^ " present") true (Helpers.contains ~sub dot))
    [ "digraph \"demo\""; "\"m1\" [label=\"m1: *\"]"; "\"s\" [label=\"s: +\"]";
      "\"m1\" -> \"s\";"; "\"a\" [shape=box];" ]

let schedule_export () =
  let g = Helpers.diamond () in
  let dot = Dfg.Dot.of_schedule ~name:"sched" g ~start:[| 1; 1; 2 |] in
  Alcotest.(check bool) "rank groups by step" true
    (Helpers.contains ~sub:"{ rank=same; \"m1\" \"m2\" }" dot);
  Alcotest.(check bool) "second step ranked" true
    (Helpers.contains ~sub:"{ rank=same; \"s\" }" dot)

let label_escaping () =
  (* Names cannot contain quotes through the builder, but labels must still
     be emitted as valid DOT for every op symbol (e.g. "<" or "&"). *)
  let g =
    Helpers.graph_exn ~inputs:[ "a"; "b" ]
      [
        Helpers.op "c" Dfg.Op.Lt [ "a"; "b" ];
        Helpers.op "d" Dfg.Op.And [ "a"; "b" ];
      ]
  in
  let dot = Dfg.Dot.of_graph g in
  Alcotest.(check bool) "comparison label" true
    (Helpers.contains ~sub:"c: <" dot);
  Alcotest.(check bool) "logic label" true (Helpers.contains ~sub:"d: &" dot)

let lint_overlay () =
  let g = Helpers.diamond () in
  let dot =
    Dfg.Dot.of_graph ~fill:[ ("m1", "#f4cccc"); ("a", "#fff2cc") ] g
  in
  Alcotest.(check bool) "flagged op filled" true
    (Helpers.contains ~sub:"\"m1\" [label=\"m1: *\", style=filled, fillcolor=\"#f4cccc\"];" dot);
  Alcotest.(check bool) "flagged input filled" true
    (Helpers.contains ~sub:"\"a\" [shape=box, style=filled, fillcolor=\"#fff2cc\"];" dot);
  Alcotest.(check bool) "unflagged op plain" true
    (Helpers.contains ~sub:"\"m2\" [label=\"m2: *\"];" dot)

let graph_pp_guards () =
  let g = Workloads.Classic.cond_example () in
  let txt = Format.asprintf "%a" Dfg.Graph.pp g in
  Alcotest.(check bool) "true arm rendered" true
    (Helpers.contains ~sub:"@ c1" txt);
  Alcotest.(check bool) "false arm rendered" true
    (Helpers.contains ~sub:"@ !c1" txt)

let suite =
  [
    test "graph export" graph_export;
    test "schedule export with ranks" schedule_export;
    test "operator labels" label_escaping;
    test "lint overlay colours flagged nodes" lint_overlay;
    test "graph pp renders guards" graph_pp_guards;
  ]
