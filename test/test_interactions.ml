(* Feature interactions: the paper's extensions combined. *)

let test name f = Alcotest.test_case name `Quick f

let multicycle_plus_latency () =
  (* 2-cycle multipliers under functional pipelining: spans fold modulo L. *)
  let config =
    { Core.Config.default with
      Core.Config.delays = (function Dfg.Op.Mul -> 2 | _ -> 1);
      functional_latency = Some 3 }
  in
  let g = Workloads.Classic.ar_filter () in
  let cs = Core.Timeframe.min_cs config g in
  let o = Helpers.mfs_time ~config g cs in
  Helpers.check_schedule o.Core.Mfs.schedule;
  (* 13 two-cycle mults folded into 3 slots: at least ceil(26/3) = 9. *)
  Alcotest.(check bool) "folding floor with spans" true
    (Helpers.fu_count o.Core.Mfs.schedule "*" >= 9)

let pipelined_plus_latency () =
  (* Same, but pipelined units only occupy their issue slot. *)
  let config =
    { Core.Config.default with
      Core.Config.delays = (function Dfg.Op.Mul -> 2 | _ -> 1);
      pipelined = (function Dfg.Op.Mul -> true | _ -> false);
      functional_latency = Some 3 }
  in
  let g = Workloads.Classic.ar_filter () in
  let cs = Core.Timeframe.min_cs config g in
  let o = Helpers.mfs_time ~config g cs in
  Helpers.check_schedule o.Core.Mfs.schedule;
  (* Issue-only occupancy: floor drops to ceil(13/3) = 5. *)
  Alcotest.(check bool) "pipelined folding floor" true
    (Helpers.fu_count o.Core.Mfs.schedule "*" >= 5)

let chaining_plus_resource () =
  (* Resource-constrained MFS with chaining: fewer units, chained steps. *)
  let config =
    { Core.Config.default with
      Core.Config.chaining =
        Some { Core.Config.prop_delay = (fun _ -> 40.); clock = 100. } }
  in
  let g = Workloads.Classic.chained_sum () in
  let o =
    Helpers.check_okd "resource+chain"
      (Core.Mfs.run ~config g
         (Core.Mfs.Resource { limits = [ ("+", 1); ("-", 1) ] }))
  in
  Helpers.check_schedule o.Core.Mfs.schedule;
  Alcotest.(check bool) "single adder respected" true
    (Helpers.fu_count o.Core.Mfs.schedule "+" <= 1);
  (* Chaining still compresses below the unchained serial makespan. *)
  Alcotest.(check bool) "beats unchained lower bound" true
    (Core.Schedule.makespan o.Core.Mfs.schedule <= 5)

let guards_plus_multicycle () =
  (* Mutually exclusive 2-cycle multiplications overlap on one unit. *)
  let g =
    Helpers.graph_exn ~inputs:[ "a"; "b" ]
      [
        Helpers.op "c" Dfg.Op.Lt [ "a"; "b" ];
        ("m1", Dfg.Op.Mul, [ "a"; "b" ], [ ("c", true) ]);
        ("m2", Dfg.Op.Mul, [ "b"; "a" ], [ ("c", false) ]);
      ]
  in
  let config =
    { Core.Config.default with
      Core.Config.delays = (function Dfg.Op.Mul -> 2 | _ -> 1) }
  in
  let o = Helpers.mfs_time ~config g 3 in
  Helpers.check_schedule o.Core.Mfs.schedule;
  Alcotest.(check int) "one multiplier" 1
    (Helpers.fu_count o.Core.Mfs.schedule "*")

let cse_then_mfs_saves_a_unit () =
  (* Removing diffeq's duplicate u*dx drops the T=6 multiplier need. *)
  let g = Workloads.Classic.diffeq () in
  let g' = Helpers.check_ok "cse" (Dfg.Cse.eliminate g) in
  let before = Helpers.mfs_time g 6 in
  let after = Helpers.mfs_time g' 6 in
  Alcotest.(check bool) "CSE never hurts" true
    (Helpers.fu_count after.Core.Mfs.schedule "*"
    <= Helpers.fu_count before.Core.Mfs.schedule "*")

let style2_plus_resource () =
  let g = Workloads.Classic.diffeq () in
  let lib = Celllib.Ncr.for_graph g in
  let o =
    Helpers.check_okd "style2 resource"
      (Core.Mfsa.run_resource ~style:Core.Mfsa.No_self_loop ~library:lib
         ~limits:[ ("*", 2) ] g)
  in
  Helpers.check_schedule o.Core.Mfsa.schedule;
  Alcotest.(check (list int)) "no self loops" []
    (Rtl.Datapath.self_loop_alus o.Core.Mfsa.datapath)

let three_way_case () =
  (* §5.1 covers case statements: a 3-arm case encoded as nested if-else
     (as the front end does) makes all arms pairwise exclusive, so one unit
     serves all three. *)
  let src =
    "input a, b;\n\
     c1 = a < 10;\n\
     if (c1) { r = a * b; } else {\n\
    \  c2 = a < 20;\n\
    \  if (c2) { r2 = a * a; } else { r3 = b * b; }\n\
     }\n"
  in
  let g = Helpers.check_okd "compile" (Dfg.Frontend.compile src) in
  let id n = (Option.get (Dfg.Graph.find g n)).Dfg.Graph.id in
  let arms = [ id "r"; id "r2_else"; id "r3_else_else" ] in
  List.iter
    (fun i ->
      List.iter
        (fun j ->
          if i <> j then
            Alcotest.(check bool) "arms pairwise exclusive" true
              (Dfg.Graph.mutually_exclusive g i j))
        arms)
    arms;
  (* All three multiplications share one unit and, where frames allow, a
     control step. *)
  let o = Helpers.mfs_time g (Dfg.Bounds.critical_path g) in
  Helpers.check_schedule o.Core.Mfs.schedule;
  Alcotest.(check int) "one multiplier serves the case" 1
    (Helpers.fu_count o.Core.Mfs.schedule "*");
  (* And the synthesised design executes the right arm. *)
  let lib = Celllib.Ncr.for_graph g in
  let m =
    Helpers.check_okd "mfsa"
      (Core.Mfsa.run ~library:lib ~cs:(Dfg.Bounds.critical_path g) g)
  in
  let ctrl =
    Helpers.check_ok "ctrl"
      (Rtl.Controller.generate m.Core.Mfsa.datapath ~delay:(fun _ -> 1))
  in
  let consts = Dfg.Frontend.const_env g in
  List.iter
    (fun (a, expect_node, expect_v) ->
      let env = [ ("a", a); ("b", 3) ] @ consts in
      let r =
        Helpers.check_ok "machine" (Sim.Machine.run m.Core.Mfsa.datapath ctrl ~env)
      in
      Alcotest.(check (option int))
        (Printf.sprintf "a=%d takes arm %s" a expect_node)
        (Some expect_v)
        (List.assoc_opt expect_node r.Sim.Machine.values))
    [ (5, "r", 15); (15, "r2_else", 225); (99, "r3_else_else", 9) ]

let suite =
  [
    test "three-way case via nested if-else (5.1)" three_way_case;
    test "multi-cycle + functional pipelining" multicycle_plus_latency;
    test "structural + functional pipelining" pipelined_plus_latency;
    test "chaining + resource constraints" chaining_plus_resource;
    test "guards + multi-cycle sharing" guards_plus_multicycle;
    test "CSE then MFS" cse_then_mfs_saves_a_unit;
    test "style 2 + resource constraints" style2_plus_resource;
  ]
