(* End-to-end flows: text -> graph -> schedule -> allocation -> controller ->
   cycle-accurate simulation, across the paper's feature matrix. *)

let test name f = Alcotest.test_case name `Quick f

let full_flow ?(style = Core.Mfsa.Unrestricted) ?config ?lib g ~cs =
  let library = match lib with Some l -> l | None -> Celllib.Ncr.for_graph g in
  let config =
    match config with Some c -> c | None -> Core.Config.of_library library
  in
  let o =
    Helpers.check_okd "mfsa" (Core.Mfsa.run ~config ~style ~library ~cs g)
  in
  Helpers.check_schedule o.Core.Mfsa.schedule;
  let delay i =
    Core.Config.delay config (Dfg.Graph.node g i).Dfg.Graph.kind
  in
  (match
     Rtl.Check.datapath
       ~style2:(style = Core.Mfsa.No_self_loop)
       o.Core.Mfsa.datapath ~delay
   with
  | Ok () -> ()
  | Error errs -> Alcotest.failf "datapath: %s" (String.concat "; " (List.map Diag.to_string errs)));
  let ctrl =
    Helpers.check_ok "controller"
      (Rtl.Controller.generate o.Core.Mfsa.datapath ~delay)
  in
  (match Sim.Equiv.check_random ~runs:15 o.Core.Mfsa.datapath ctrl with
  | Ok () -> ()
  | Error e -> Alcotest.failf "equivalence: %s" (Diag.to_string e));
  o

let from_text_source () =
  let src =
    "# behavioural input\n\
     input a b c d\n\
     p = * a b\n\
     q = * c d\n\
     r = + p q\n\
     s = - r a\n"
  in
  let g = Helpers.check_okd "parse" (Dfg.Parser.parse src) in
  let o = full_flow g ~cs:4 in
  Alcotest.(check bool) "cost positive" true (o.Core.Mfsa.cost.Rtl.Cost.total > 0.)

let every_classic_both_styles () =
  List.iter
    (fun (name, g) ->
      let cs = Dfg.Bounds.critical_path g + 1 in
      ignore (full_flow g ~cs);
      ignore (full_flow ~style:Core.Mfsa.No_self_loop g ~cs);
      ignore name)
    (Workloads.Classic.all ()
    @ [ ("biquad", Workloads.Classic.biquad ());
        ("facet", Workloads.Classic.facet ());
        ("diffeq", Workloads.Classic.diffeq ()) ])

let two_cycle_flow () =
  let g = Workloads.Classic.dct8 () in
  let lib = Celllib.Ncr.two_cycle_multiplier (Celllib.Ncr.for_graph g) in
  let config = Core.Config.of_library lib in
  let cs = Core.Timeframe.min_cs config g + 1 in
  ignore (full_flow ~config ~lib g ~cs)

let pipelined_flow () =
  let g = Workloads.Classic.ewf () in
  let lib = Celllib.Ncr.pipelined_multiplier (Celllib.Ncr.for_graph g) in
  let config = Core.Config.of_library lib in
  let cs = Core.Timeframe.min_cs config g in
  ignore (full_flow ~config ~lib g ~cs)

let guarded_flow () =
  let g = Workloads.Classic.cond_example () in
  ignore (full_flow g ~cs:(Dfg.Bounds.critical_path g))

let merged_guarded_flow () =
  let g =
    Helpers.check_ok "merge"
      (Dfg.Mutex.merge_shared (Workloads.Classic.cond_example ()))
  in
  ignore (full_flow g ~cs:(Dfg.Bounds.critical_path g + 1))

let mfs_then_simulate () =
  (* MFS binding (single-function units) run through elaboration and the
     machine: build assignments from the schedule's columns. *)
  let g = Workloads.Classic.diffeq () in
  let o = Helpers.mfs_time g 4 in
  let s = o.Core.Mfs.schedule in
  let col = Option.get s.Core.Schedule.col in
  let lib = Celllib.Ncr.for_graph g in
  let by_unit = Hashtbl.create 8 in
  List.iter
    (fun nd ->
      let key = (Dfg.Op.fu_class nd.Dfg.Graph.kind, col.(nd.Dfg.Graph.id)) in
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_unit key) in
      Hashtbl.replace by_unit key (nd.Dfg.Graph.id :: cur))
    (Dfg.Graph.nodes g);
  let assignments =
    Hashtbl.fold
      (fun (klass, _) ops acc ->
        let kind = Option.get (Dfg.Op.of_string klass) in
        (Celllib.Library.single_function lib kind, ops) :: acc)
      by_unit []
  in
  let dp =
    Helpers.check_ok "elaborate"
      (Rtl.Datapath.elaborate g ~start:s.Core.Schedule.start
         ~delay:(fun _ -> 1) ~cs:4 ~assignments)
  in
  let ctrl =
    Helpers.check_ok "controller" (Rtl.Controller.generate dp ~delay:(fun _ -> 1))
  in
  match Sim.Equiv.check_random ~runs:15 dp ctrl with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Diag.to_string e)

let verilog_for_all_classics () =
  List.iter
    (fun (name, g) ->
      let lib = Celllib.Ncr.for_graph g in
      let o =
        Helpers.check_okd "mfsa"
          (Core.Mfsa.run ~library:lib ~cs:(Dfg.Bounds.critical_path g + 1) g)
      in
      let ctrl =
        Helpers.check_ok "controller"
          (Rtl.Controller.generate o.Core.Mfsa.datapath ~delay:(fun _ -> 1))
      in
      let src = Rtl.Verilog.emit ~module_name:name o.Core.Mfsa.datapath ctrl in
      Alcotest.(check bool) (name ^ " verilog") true
        (Helpers.contains ~sub:"endmodule" src))
    (Workloads.Classic.all ())

let file_round_trip () =
  let path = Filename.temp_file "mfs" ".dfg" in
  let g = Workloads.Classic.tseng () in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Dfg.Parser.to_source g));
  let g' = Helpers.check_okd "parse_file" (Dfg.Parser.parse_file path) in
  Alcotest.(check int) "same ops" (Dfg.Graph.num_nodes g) (Dfg.Graph.num_nodes g');
  ignore (full_flow g' ~cs:5);
  Sys.remove path

let guarded_random_flow =
  Helpers.qcheck ~count:25 "guarded random DAGs synthesise and compute"
    (Helpers.guarded_dag_gen ())
    (fun g ->
      let lib = Celllib.Ncr.for_graph g in
      let cs = Dfg.Bounds.critical_path g + 1 in
      match Core.Mfsa.run ~library:lib ~cs g with
      | Error _ -> false
      | Ok o -> (
          let delay i =
            Core.Config.delay o.Core.Mfsa.schedule.Core.Schedule.config
              (Dfg.Graph.node g i).Dfg.Graph.kind
          in
          Core.Schedule.check o.Core.Mfsa.schedule = Ok ()
          && Rtl.Check.datapath o.Core.Mfsa.datapath ~delay = Ok ()
          &&
          match Rtl.Controller.generate o.Core.Mfsa.datapath ~delay with
          | Error _ -> false
          | Ok ctrl ->
              Sim.Equiv.check_random ~runs:6 o.Core.Mfsa.datapath ctrl = Ok ()))

let guarded_random_merge_flow =
  Helpers.qcheck ~count:20 "branch merging preserves guarded random DAGs"
    (Helpers.guarded_dag_gen ())
    (fun g ->
      match Dfg.Mutex.merge_shared g with
      | Error _ -> false
      | Ok g' -> (
          let lib = Celllib.Ncr.for_graph g' in
          let cs = Dfg.Bounds.critical_path g' + 1 in
          match Core.Mfsa.run ~library:lib ~cs g' with
          | Error _ -> false
          | Ok o -> (
              let delay _ = 1 in
              match Rtl.Controller.generate o.Core.Mfsa.datapath ~delay with
              | Error _ -> false
              | Ok ctrl ->
                  Sim.Equiv.check_random ~runs:5 o.Core.Mfsa.datapath ctrl
                  = Ok ())))

let wide_kind_flow =
  Helpers.qcheck ~count:25 "wide-alphabet random DAGs synthesise and compute"
    (Helpers.wide_dag_gen ())
    (fun g ->
      let lib = Celllib.Ncr.for_graph g in
      let cs = Dfg.Bounds.critical_path g + 1 in
      match Core.Mfsa.run ~library:lib ~cs g with
      | Error _ -> false
      | Ok o -> (
          let delay _ = 1 in
          Core.Schedule.check o.Core.Mfsa.schedule = Ok ()
          &&
          match Rtl.Controller.generate o.Core.Mfsa.datapath ~delay with
          | Error _ -> false
          | Ok ctrl ->
              Sim.Equiv.check_random ~runs:5 o.Core.Mfsa.datapath ctrl = Ok ()))

(* Deterministic stress sweep: the full flow over a seed grid, mirroring
   the exploratory sweep that originally caught the cross-branch-read bug. *)
let stress_sweep () =
  for seed = 0 to 59 do
    let ops = 4 + (seed mod 13) in
    let g =
      Workloads.Random_dag.generate_exn
        ~spec:
          { Workloads.Random_dag.default with
            Workloads.Random_dag.ops; guard_prob = 0.3 }
        ~seed ()
    in
    let lib = Celllib.Ncr.for_graph g in
    let cs = Dfg.Bounds.critical_path g + 1 in
    let o = Helpers.check_okd "mfsa" (Core.Mfsa.run ~library:lib ~cs g) in
    Helpers.check_schedule o.Core.Mfsa.schedule;
    let ctrl =
      Helpers.check_ok "ctrl"
        (Rtl.Controller.generate o.Core.Mfsa.datapath ~delay:(fun _ -> 1))
    in
    match Sim.Equiv.check_random ~runs:4 o.Core.Mfsa.datapath ctrl with
    | Ok () -> ()
    | Error e -> Alcotest.failf "seed %d: %s" seed (Diag.to_string e)
  done

let suite =
  [
    test "text source to simulated RTL" from_text_source;
    guarded_random_flow;
    guarded_random_merge_flow;
    wide_kind_flow;
    test "deterministic stress sweep (60 seeds)" stress_sweep;
    test "every classic, both design styles" every_classic_both_styles;
    test "two-cycle multiplier flow" two_cycle_flow;
    test "pipelined multiplier flow" pipelined_flow;
    test "guarded conditional flow" guarded_flow;
    test "merged conditional flow" merged_guarded_flow;
    test "MFS schedule through elaboration and simulation" mfs_then_simulate;
    test "Verilog for every classic" verilog_for_all_classics;
    test "file round trip" file_round_trip;
  ]
