let test name f = Alcotest.test_case name `Quick f

(* Budgets for tests: generous wall clock (we only check the plumbing, not
   the timer), few simulation runs to keep the suite fast. *)
let budgets = { Harness.Driver.stage_seconds = 30.0; sim_runs = 4 }

let driver_clean_on_diffeq () =
  let g = Workloads.Classic.diffeq () in
  let o = Harness.Driver.run ~budgets g in
  Alcotest.(check bool) "no violations" true (o.Harness.Driver.violations = []);
  Alcotest.(check bool) "not stopped" true (o.Harness.Driver.stopped = None);
  Alcotest.(check bool) "primary scheduler" true
    (o.Harness.Driver.sched_via = Harness.Driver.Primary);
  Alcotest.(check bool) "primary binder" true
    (o.Harness.Driver.bind_via = Some Harness.Driver.Primary);
  Alcotest.(check bool) "schedule produced" true
    (o.Harness.Driver.schedule <> None);
  Alcotest.(check bool) "stages reported" true
    (List.length o.Harness.Driver.stages >= 4)

let driver_stops_on_infeasible () =
  let g = Workloads.Classic.diffeq () in
  let options = { Harness.Driver.default_options with Harness.Driver.cs = 1 } in
  let o = Harness.Driver.run ~budgets ~options g in
  (match o.Harness.Driver.stopped with
  | None -> Alcotest.fail "expected an early stop on cs=1"
  | Some d ->
      Alcotest.(check bool) "stop is not a bug" false (Diag.is_bug d));
  Alcotest.(check bool) "no violations" true (o.Harness.Driver.violations = [])

let colbind_fallback_is_valid () =
  (* The MFSA fallback binding must produce a datapath that passes the
     structural checks and simulates against the golden model. *)
  List.iter
    (fun (name, g) ->
      let config = Core.Config.default in
      let lib = Celllib.Ncr.for_graph g in
      let cs = Dfg.Bounds.critical_path g + 1 in
      let s = Helpers.check_ok (name ^ " list") (Baselines.List_sched.time g ~cs) in
      let dp =
        Helpers.check_ok (name ^ " colbind")
          (Harness.Driver.colbind_datapath lib config g s)
      in
      let delay i =
        Core.Config.delay config (Dfg.Graph.node g i).Dfg.Graph.kind
      in
      (match Rtl.Check.datapath dp ~delay with
      | Ok () -> ()
      | Error errs ->
          Alcotest.failf "%s: fallback datapath invalid: %s" name
            (String.concat "; " (List.map Diag.to_string errs)));
      let ctrl =
        Helpers.check_ok (name ^ " ctrl") (Rtl.Controller.generate dp ~delay)
      in
      match Sim.Equiv.check_random ~runs:5 dp ctrl with
      | Ok () -> ()
      | Error d -> Alcotest.failf "%s: %s" name (Diag.to_string d))
    (Workloads.Classic.all ())

let options_flags_roundtrip () =
  let o =
    { Harness.Driver.cs = 7; limits = [ ("*", 2) ]; two_cycle = true;
      pipelined = false; latency = Some 3; clock = Some 40.0; style2 = true;
      cse = true; widths = true; baseline_only = true }
  in
  let flags = Harness.Driver.options_to_flags o in
  List.iter
    (fun sub ->
      Alcotest.(check bool) ("flag " ^ sub) true (Helpers.contains ~sub flags))
    [ "--cs 7"; "--limit '*=2'"; "--two-cycle-mult"; "--latency 3";
      "--clock 40"; "--style 2"; "--cse"; "--widths"; "--baseline-only" ]

let campaign_clean () =
  (* A bounded campaign without injection: no crashes, no invariant
     violations. Expected infeasibilities are fine. *)
  let r = Harness.Fuzz.campaign ~budgets ~runs:40 ~seed:0 () in
  Alcotest.(check int) "runs" 40 r.Harness.Fuzz.runs;
  Alcotest.(check (list string)) "no failures" []
    (List.map (fun f -> f.Harness.Fuzz.f_kind) r.Harness.Fuzz.failures);
  Alcotest.(check bool) "some runs complete cleanly" true
    (r.Harness.Fuzz.clean > 0)

let campaign_deterministic () =
  let run () =
    let r = Harness.Fuzz.campaign ~budgets ~runs:15 ~seed:3 () in
    ( r.Harness.Fuzz.clean, r.Harness.Fuzz.infeasible, r.Harness.Fuzz.degraded,
      List.map (fun f -> f.Harness.Fuzz.f_kind) r.Harness.Fuzz.failures )
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "same campaign twice" true (a = b)

let injected_faults_detected () =
  (* Every injector must be caught by a cross-stage invariant on at least
     one run, never survive unnoticed, and shrink to a tiny reproducer. *)
  List.iter
    (fun fault ->
      let name = Harness.Fault.to_string fault in
      let r = Harness.Fuzz.campaign ~fault ~budgets ~runs:25 ~seed:1 () in
      let detected, missed =
        List.partition
          (fun f ->
            Helpers.contains ~sub:"violation:" f.Harness.Fuzz.f_kind)
          r.Harness.Fuzz.failures
      in
      Alcotest.(check (list string)) (name ^ ": no missed faults") []
        (List.map (fun f -> f.Harness.Fuzz.f_kind) missed);
      Alcotest.(check bool) (name ^ ": detected at least once") true
        (detected <> []);
      List.iter
        (fun f ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: reproducer has <= 8 ops (got %d)" name
               f.Harness.Fuzz.f_size)
            true (f.Harness.Fuzz.f_size <= 8))
        detected)
    Harness.Fault.all

let shrink_drops_irrelevant_rows () =
  (* Oracle: "the case still contains a multiplication". Everything else
     must shrink away, and references must stay valid. *)
  let g = Workloads.Classic.diffeq () in
  let case = Harness.Fuzz.case_of_graph Harness.Driver.default_options g in
  let oracle c =
    List.exists (fun (_, k, _, _) -> k = Dfg.Op.Mul) c.Harness.Fuzz.rows
  in
  let small = Harness.Fuzz.shrink ~oracle ~max_attempts:500 case in
  Alcotest.(check int) "one row left" 1 (Harness.Fuzz.case_size small);
  match Harness.Fuzz.graph_of_case small with
  | Ok g' -> Alcotest.(check int) "still builds" 1 (Dfg.Graph.num_nodes g')
  | Error msg -> Alcotest.failf "shrunk case no longer builds: %s" msg

let reproducer_file () =
  let g = Workloads.Classic.diffeq () in
  let case = Harness.Fuzz.case_of_graph Harness.Driver.default_options g in
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "mfs-fuzz-test" in
  let path =
    Harness.Fuzz.write_reproducer ~dir ~seed:42 ~kind:"violation:test"
      ~fault:Harness.Fault.Corrupt_start case
  in
  let ic = open_in path in
  let len = in_channel_length ic in
  let body = really_input_string ic len in
  close_in ic;
  Sys.remove path;
  List.iter
    (fun sub ->
      Alcotest.(check bool) ("header " ^ sub) true (Helpers.contains ~sub body))
    [ "# synth fuzz reproducer"; "# failure: violation:test"; "# seed: 42";
      "# fault: corrupt-start"; "input" ];
  (* The body after the headers must parse back. *)
  let lines = String.split_on_char '\n' body in
  let dfg =
    String.concat "\n" (List.filter (fun l -> not (String.length l > 0 && l.[0] = '#')) lines)
  in
  ignore (Helpers.check_okd "reproducer parses" (Dfg.Parser.parse dfg))

let suite =
  [
    test "driver: clean diffeq end to end" driver_clean_on_diffeq;
    test "driver: infeasible budget stops, not a bug" driver_stops_on_infeasible;
    test "driver: colbind fallback datapaths are valid" colbind_fallback_is_valid;
    test "driver: options render as synth flags" options_flags_roundtrip;
    test "fuzz: bounded campaign is clean" campaign_clean;
    test "fuzz: campaigns are deterministic in the seed" campaign_deterministic;
    test "fuzz: every injected fault is caught and shrunk" injected_faults_detected;
    test "fuzz: shrinking reaches a minimal case" shrink_drops_irrelevant_rows;
    test "fuzz: reproducer files carry flags and parse back" reproducer_file;
  ]
