let test name f = Alcotest.test_case name `Quick f

let budgets = { Harness.Driver.stage_seconds = 30.0; sim_runs = 4 }

let tmp_path name =
  let dir = Filename.get_temp_dir_name () in
  Filename.concat dir
    (Printf.sprintf "mfs-batch-%d-%s" (Unix.getpid ()) name)

let ok_job ?degraded id =
  Batch.Pool.job ?degraded ~id:("job-" ^ id) ~seed:(int_of_string id)
    ~descr:("job " ^ id)
    (fun () -> Ok (Printf.sprintf "{\"n\":%s}" id))

(* --- diag: the new Partial category ------------------------------------ *)

let partial_category () =
  let d = Diag.partial "3 of 20 job(s) failed" in
  Alcotest.(check int) "exit code 6" 6 (Diag.exit_code d);
  Alcotest.(check string) "code" "batch.partial-failure" d.Diag.code;
  Alcotest.(check string) "category name" "partial"
    (Diag.category_name d.Diag.category);
  Alcotest.(check bool) "name round-trips" true
    (Diag.category_of_name "partial" = Some Diag.Partial);
  Alcotest.(check bool) "not a bug" false (Diag.is_bug d)

(* --- jsonl -------------------------------------------------------------- *)

let jsonl_roundtrip () =
  let doc =
    Batch.Jsonl.Obj
      [
        ("s", Batch.Jsonl.String "a \"quoted\"\nline");
        ("i", Batch.Jsonl.Int (-42));
        ("f", Batch.Jsonl.Float 1.5);
        ("b", Batch.Jsonl.Bool true);
        ("n", Batch.Jsonl.Null);
        ("l", Batch.Jsonl.List [ Batch.Jsonl.Int 1; Batch.Jsonl.String "x" ]);
      ]
  in
  (match Batch.Jsonl.parse (Batch.Jsonl.to_string doc) with
  | Error e -> Alcotest.failf "reparse failed: %s" e
  | Ok doc' ->
      Alcotest.(check bool) "round-trips" true (doc = doc');
      Alcotest.(check (option string)) "string member"
        (Some "a \"quoted\"\nline")
        (Batch.Jsonl.str "s" doc');
      Alcotest.(check (option int)) "int member" (Some (-42))
        (Batch.Jsonl.int "i" doc'));
  (match Batch.Jsonl.parse "{\"a\":1} trailing" with
  | Ok _ -> Alcotest.fail "trailing garbage accepted"
  | Error _ -> ());
  match Batch.Jsonl.parse "{\"a\":" with
  | Ok _ -> Alcotest.fail "truncated object accepted"
  | Error _ -> ()

(* --- verdict ------------------------------------------------------------ *)

let verdict_fields_roundtrip () =
  List.iter
    (fun v ->
      let doc = Batch.Jsonl.Obj (Batch.Verdict.to_fields v) in
      match Batch.Verdict.of_fields doc with
      | Error e ->
          Alcotest.failf "%s: of_fields failed: %s" (Batch.Verdict.label v) e
      | Ok v' ->
          Alcotest.(check bool)
            (Batch.Verdict.label v ^ " round-trips")
            true
            (Batch.Verdict.equal v v'))
    [
      Batch.Verdict.Done "{\"status\":\"clean\"}";
      Batch.Verdict.Rejected (Diag.input ~code:"io.no-such-input" "nope");
      Batch.Verdict.Timeout;
      Batch.Verdict.Oom;
      Batch.Verdict.Crashed (Batch.Verdict.Signal "SIGSEGV");
      Batch.Verdict.Crashed (Batch.Verdict.Exit 3);
    ]

(* --- journal ------------------------------------------------------------ *)

let record ?(attempt = 1) ?(final = true) ~id ~seed verdict =
  {
    Batch.Journal.id;
    seed;
    descr = "job " ^ id;
    attempt;
    final;
    verdict;
    seconds = 0.25;
  }

let journal_roundtrip_and_torn_line () =
  let path = tmp_path "torn.jsonl" in
  if Sys.file_exists path then Sys.remove path;
  let w = Batch.Journal.open_writer path in
  let r1 = record ~id:"a" ~seed:0 (Batch.Verdict.Done "{}") in
  let r2 =
    record ~id:"b" ~seed:1 ~final:false Batch.Verdict.Timeout ~attempt:1
  in
  Helpers.check_okd "append r1" (Batch.Journal.append w r1);
  Helpers.check_okd "append r2" (Batch.Journal.append w r2);
  Batch.Journal.close w;
  (* Simulate a SIGKILL mid-append: a torn record with no newline. *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "{\"id\":\"c\",\"seed\":2,\"at";
  close_out oc;
  (match Batch.Journal.load path with
  | Error d -> Alcotest.failf "load failed: %s" (Diag.to_string d)
  | Ok rs ->
      Alcotest.(check int) "torn trailing line dropped" 2 (List.length rs);
      Alcotest.(check bool) "records survive" true
        (List.map (fun r -> r.Batch.Journal.id) rs = [ "a"; "b" ]
        && List.for_all2
             (fun a b ->
               Batch.Verdict.equal a.Batch.Journal.verdict
                 b.Batch.Journal.verdict)
             rs [ r1; r2 ]));
  (* A corrupt line in the middle is a real error, not silently skipped. *)
  let oc = open_out path in
  output_string oc (Batch.Journal.record_to_json r1 ^ "\n");
  output_string oc "not json at all\n";
  output_string oc (Batch.Journal.record_to_json r2 ^ "\n");
  close_out oc;
  (match Batch.Journal.load path with
  | Ok _ -> Alcotest.fail "corrupt middle line accepted"
  | Error d ->
      Alcotest.(check string) "journal code" "batch.journal" d.Diag.code);
  Sys.remove path

let journal_equivalence () =
  let a =
    [
      record ~id:"a" ~seed:0 (Batch.Verdict.Done "{\"n\":1}");
      record ~id:"b" ~seed:1 ~final:false Batch.Verdict.Timeout;
      record ~id:"b" ~seed:1 ~attempt:2 Batch.Verdict.Timeout;
    ]
  in
  (* Same finals, different order, no intermediate attempt. *)
  let b =
    [
      record ~id:"b" ~seed:1 ~attempt:2 Batch.Verdict.Timeout;
      record ~id:"a" ~seed:0 (Batch.Verdict.Done "{\"n\":1}");
    ]
  in
  Alcotest.(check bool) "order and attempts ignored" true
    (Batch.Journal.equivalent a b);
  let c = [ record ~id:"a" ~seed:0 (Batch.Verdict.Done "{\"n\":2}") ] in
  Alcotest.(check bool) "different payload differs" false
    (Batch.Journal.equivalent a c)

(* --- pool --------------------------------------------------------------- *)

let check_run = function
  | Ok o -> o
  | Error d -> Alcotest.failf "pool refused to run: %s" (Diag.to_string d)

let pool_submission_order () =
  let jobs = List.init 6 (fun i -> ok_job (string_of_int i)) in
  let o =
    check_run
      (Batch.Pool.run ~workers:3 ~retry:Batch.Retry.none ~deadline:20.0 jobs)
  in
  Alcotest.(check int) "all jobs reported" 6
    (List.length o.Batch.Pool.records);
  Alcotest.(check bool) "not interrupted" false o.Batch.Pool.interrupted;
  List.iteri
    (fun i r ->
      Alcotest.(check string)
        (Printf.sprintf "record %d in submission order" i)
        ("job-" ^ string_of_int i)
        r.Batch.Journal.id;
      match r.Batch.Journal.verdict with
      | Batch.Verdict.Done payload ->
          Alcotest.(check string) "payload" (Printf.sprintf "{\"n\":%d}" i)
            payload
      | v -> Alcotest.failf "job %d: %s" i (Batch.Verdict.describe v))
    o.Batch.Pool.records

(* The acceptance-criteria containment proof: >= 20 jobs, one hangs, one
   segfaults; every other job completes and the two faulty ones are
   classified as timeout / crashed. *)
let pool_containment () =
  let jobs =
    List.init 20 (fun i ->
        if i = 5 then
          Batch.Pool.job ~id:"hang" ~seed:i ~descr:"hanging job" (fun () ->
              Harness.Fault.hang ())
        else if i = 11 then
          Batch.Pool.job ~id:"segv" ~seed:i ~descr:"crashing job" (fun () ->
              Harness.Fault.segv ())
        else ok_job (string_of_int i))
  in
  let o =
    check_run
      (Batch.Pool.run ~workers:4 ~retry:Batch.Retry.none ~deadline:1.0 jobs)
  in
  Alcotest.(check int) "every job has a verdict" 20
    (List.length o.Batch.Pool.records);
  List.iter
    (fun r ->
      match (r.Batch.Journal.id, r.Batch.Journal.verdict) with
      | "hang", Batch.Verdict.Timeout -> ()
      | "hang", v ->
          Alcotest.failf "hang classified as %s" (Batch.Verdict.describe v)
      | "segv", Batch.Verdict.Crashed (Batch.Verdict.Signal _) -> ()
      | "segv", v ->
          Alcotest.failf "segv classified as %s" (Batch.Verdict.describe v)
      | id, Batch.Verdict.Done _ ->
          Alcotest.(check bool) (id ^ " done") true true
      | id, v ->
          Alcotest.failf "%s did not survive its neighbours: %s" id
            (Batch.Verdict.describe v))
    o.Batch.Pool.records

(* Satellite: Driver.over_budget is advisory; an in-stage hang is only
   stopped by the pool's hard watchdog. *)
let driver_hang_is_killed_by_watchdog () =
  let job =
    Batch.Pool.job ~id:"driver-hang" ~seed:0 ~descr:"driver under hang fault"
      (fun () ->
        let g = Workloads.Classic.diffeq () in
        let o = Harness.Driver.run ~fault:Harness.Fault.Hang ~budgets g in
        (* Unreachable: the hang spins inside a stage forever. *)
        ignore o;
        Ok "{}")
  in
  let o =
    check_run
      (Batch.Pool.run ~retry:Batch.Retry.none ~deadline:0.8 [ job ])
  in
  match (List.hd o.Batch.Pool.records).Batch.Journal.verdict with
  | Batch.Verdict.Timeout -> ()
  | v -> Alcotest.failf "expected timeout, got %s" (Batch.Verdict.describe v)

let pool_oom_ceiling () =
  let job =
    Batch.Pool.job ~id:"oom" ~seed:0 ~descr:"allocating job" (fun () ->
        let rec grow acc = grow (Array.make 4096 0 :: acc) in
        grow [])
  in
  let o =
    check_run
      (Batch.Pool.run ~retry:Batch.Retry.none ~heap_words:2_000_000
         ~deadline:30.0 [ job ])
  in
  match (List.hd o.Batch.Pool.records).Batch.Journal.verdict with
  | Batch.Verdict.Oom -> ()
  | v -> Alcotest.failf "expected oom, got %s" (Batch.Verdict.describe v)

let retry_runs_degraded_closure () =
  let path = tmp_path "retry.jsonl" in
  if Sys.file_exists path then Sys.remove path;
  let job =
    Batch.Pool.job ~id:"straggler" ~seed:0 ~descr:"hangs, then degrades"
      ~degraded:(fun () -> Ok "{\"recovered\":true}")
      (fun () -> Harness.Fault.hang ())
  in
  let o =
    check_run
      (Batch.Pool.run ~retry:Batch.Retry.default ~journal:path ~deadline:0.8
         [ job ])
  in
  (match (List.hd o.Batch.Pool.records).Batch.Journal.verdict with
  | Batch.Verdict.Done "{\"recovered\":true}" -> ()
  | v -> Alcotest.failf "expected recovery, got %s" (Batch.Verdict.describe v));
  Alcotest.(check int) "final record is the retry" 2
    (List.hd o.Batch.Pool.records).Batch.Journal.attempt;
  (* The journal keeps both attempts: a non-final timeout, then the
     recovered retry. *)
  (match Batch.Journal.load path with
  | Error d -> Alcotest.failf "journal: %s" (Diag.to_string d)
  | Ok rs ->
      Alcotest.(check (list bool)) "attempt finality" [ false; true ]
        (List.map (fun r -> r.Batch.Journal.final) rs);
      Alcotest.(check bool) "first attempt timed out" true
        (Batch.Verdict.equal (List.hd rs).Batch.Journal.verdict
           Batch.Verdict.Timeout));
  Sys.remove path

(* Satellite: run a batch, SIGKILL the whole pool mid-flight, resume, and
   end up with a journal equivalent to an uninterrupted run's. *)
let resume_after_sigkill () =
  let journal = tmp_path "resume.jsonl" in
  let reference = tmp_path "reference.jsonl" in
  List.iter (fun p -> if Sys.file_exists p then Sys.remove p) [ journal; reference ];
  let jobs =
    List.init 8 (fun i ->
        Batch.Pool.job ~id:("slow-" ^ string_of_int i) ~seed:i
          ~descr:("slow job " ^ string_of_int i)
          (fun () ->
            Unix.sleepf 0.15;
            Ok (Printf.sprintf "{\"n\":%d}" i)))
  in
  (match Unix.fork () with
  | 0 ->
      (* The pool under test, in its own process so we can SIGKILL it. *)
      ignore
        (Batch.Pool.run ~workers:2 ~retry:Batch.Retry.none ~journal
           ~deadline:20.0 jobs);
      Unix._exit 0
  | pid ->
      Unix.sleepf 0.5;
      Unix.kill pid Sys.sigkill;
      ignore (Unix.waitpid [] pid));
  let survivors =
    match Batch.Journal.load journal with
    | Ok rs -> rs
    | Error d -> Alcotest.failf "journal after SIGKILL: %s" (Diag.to_string d)
  in
  Alcotest.(check bool) "some jobs were journalled before the kill" true
    (survivors <> []);
  Alcotest.(check bool) "the kill landed mid-flight" true
    (List.length survivors < 8);
  let o =
    check_run
      (Batch.Pool.run ~workers:2 ~retry:Batch.Retry.none ~journal ~resume:true
         ~deadline:20.0 jobs)
  in
  Alcotest.(check int) "completed jobs were skipped"
    (List.length survivors) o.Batch.Pool.resumed;
  Alcotest.(check int) "every job has a final verdict" 8
    (List.length o.Batch.Pool.records);
  ignore
    (check_run
       (Batch.Pool.run ~workers:2 ~retry:Batch.Retry.none ~journal:reference
          ~deadline:20.0 jobs));
  (match (Batch.Journal.load journal, Batch.Journal.load reference) with
  | Ok a, Ok b ->
      Alcotest.(check bool) "resumed journal == uninterrupted journal" true
        (Batch.Journal.equivalent a b)
  | Error d, _ | _, Error d -> Alcotest.failf "%s" (Diag.to_string d));
  List.iter Sys.remove [ journal; reference ]

(* --- pooled fuzz -------------------------------------------------------- *)

(* Satellite: campaign summaries are independent of the worker count —
   the sequential campaign and a 3-worker pool produce the same report. *)
let pooled_fuzz_matches_sequential () =
  let runs = 15 and seed = 3 in
  let sequential = Harness.Fuzz.campaign ~budgets ~runs ~seed () in
  let generated = Harness.Fuzz.cases ~runs ~seed () in
  let pool_jobs =
    Batch.Jobs.fuzz_jobs ~budgets ~campaign_seed:seed generated
  in
  let o =
    check_run
      (Batch.Pool.run ~workers:3 ~retry:Batch.Retry.none ~deadline:30.0
         pool_jobs)
  in
  let pooled = Batch.Jobs.fuzz_report o.Batch.Pool.records in
  Alcotest.(check bool) "identical reports" true (sequential = pooled);
  Alcotest.(check string) "identical renderings"
    (Harness.Fuzz.render_report sequential)
    (Harness.Fuzz.render_report pooled)

(* --- manifest ----------------------------------------------------------- *)

let manifest_parsing () =
  let parse text = Batch.Manifest.parse_line ~file:"m.txt" ~line:3 text in
  (match parse "  # just a comment" with
  | Ok None -> ()
  | _ -> Alcotest.fail "comment line should parse to nothing");
  (match parse "diffeq --cs 4 --style 2 --limit '*=2' --inject hang # note" with
  | Ok (Some e) ->
      Alcotest.(check string) "spec" "diffeq" e.Batch.Manifest.e_spec;
      Alcotest.(check int) "cs" 4 e.Batch.Manifest.e_options.Harness.Driver.cs;
      Alcotest.(check bool) "style 2" true
        e.Batch.Manifest.e_options.Harness.Driver.style2;
      Alcotest.(check bool) "limit" true
        (e.Batch.Manifest.e_options.Harness.Driver.limits = [ ("*", 2) ]);
      Alcotest.(check bool) "fault" true
        (e.Batch.Manifest.e_fault = Some Harness.Fault.Hang);
      Alcotest.(check bool) "descr carries the fault" true
        (Helpers.contains ~sub:"--inject hang" (Batch.Manifest.descr e))
  | Ok None -> Alcotest.fail "job line ignored"
  | Error d -> Alcotest.failf "parse: %s" (Diag.to_string d));
  List.iter
    (fun bad ->
      match parse bad with
      | Error d ->
          Alcotest.(check string) (bad ^ ": code") "batch.manifest" d.Diag.code;
          Alcotest.(check bool) (bad ^ ": has span") true
            (d.Diag.span <> None)
      | Ok _ -> Alcotest.failf "%s: accepted" bad)
    [
      "diffeq --cs nope"; "diffeq --wat"; "diffeq --inject meteor";
      "diffeq --limit banana"; "diffeq --cs";
    ]

let suite =
  [
    test "diag: partial category exits 6" partial_category;
    test "jsonl: round-trip and malformed input" jsonl_roundtrip;
    test "verdict: journal fields round-trip" verdict_fields_roundtrip;
    test "journal: fsynced records survive a torn tail"
      journal_roundtrip_and_torn_line;
    test "journal: equivalence ignores order and retries" journal_equivalence;
    test "pool: records come back in submission order" pool_submission_order;
    test "pool: hang and segv are contained, 18 neighbours finish"
      pool_containment;
    test "pool: watchdog closes the advisory-budget gap"
      driver_hang_is_killed_by_watchdog;
    test "pool: heap ceiling aborts a runaway allocation" pool_oom_ceiling;
    test "pool: timeout retries once with the degraded closure"
      retry_runs_degraded_closure;
    test "pool: SIGKILL mid-flight, then --resume reproduces the journal"
      resume_after_sigkill;
    test "fuzz: pooled campaign report equals the sequential one"
      pooled_fuzz_matches_sequential;
    test "manifest: flags, faults, comments and malformed lines"
      manifest_parsing;
  ]
